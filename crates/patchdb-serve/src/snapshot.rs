//! The `patchdb-snapshot/v1` binary index format.
//!
//! A snapshot persists a fully built [`ServeIndex`] — dataset, learned
//! Table I weights, fitted random forest, and compiled vulnerability
//! signatures — so a server can boot without running any of the
//! learning pipeline, answering byte-identically to a fresh build.
//!
//! Layout (all integers little-endian, all floats as `f64::to_bits`
//! so round-trips are bit-exact):
//!
//! ```text
//! magic    8 bytes  "PDBSNAP1"
//! schema   u32 len + UTF-8 "patchdb-snapshot/v1"
//! sections u32      always 4, in fixed order
//!   [0] records     u64 len + canonical dataset JSON (PatchDb::to_json)
//!   [1] weights     u64 len + u32 count + count x f64 bits
//!   [2] forest      u64 len + u8 present + (hyper-params, trees, nodes)
//!   [3] signatures  u64 len + u32 count + entries
//! checksum u64      FNV-1a-64 over every preceding byte
//! ```
//!
//! The records section reuses the dataset's canonical JSON codec (its
//! shape checks, and Rust's round-trip-exact `f64` formatting) rather
//! than inventing a second record encoding; the learned model sections
//! are raw binary because no JSON form of them exists anywhere else.
//!
//! Every decode failure — wrong magic, wrong schema string, truncation,
//! bad checksum, a forward-pointing tree node — reports
//! [`Error::Schema`]; only a failed read is [`Error::Io`].

use std::path::Path;

use patch_core::CommitId;
use patchdb::{Error, PatchDb, PatchSignature};
use patchdb_features::Weights;
use patchdb_ml::{ForestState, NodeState, RandomForest, SplitCriterion, TreeState};

use crate::index::{ServeIndex, SignatureEntry};

/// Leading magic of every snapshot file.
pub const MAGIC: &[u8; 8] = b"PDBSNAP1";
/// The schema tag embedded right after the magic.
pub const SCHEMA: &str = "patchdb-snapshot/v1";
/// Fixed section count of the v1 layout.
const SECTIONS: u32 = 4;

/// An encoded `patchdb-snapshot/v1` document: the bytes that live on
/// disk, plus [`Snapshot::encode`]/[`Snapshot::decode`] between those
/// bytes and a [`ServeIndex`].
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Encodes a built index. Infallible: every part of a `ServeIndex`
    /// has a representation.
    pub fn encode(index: &ServeIndex) -> Snapshot {
        let (db, weights, forest, signatures) = index.parts();
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.str32(SCHEMA);
        w.u32(SECTIONS);
        // Pretty JSON is the dataset's one canonical form; `to_json` is
        // infallible today (it returns Result only for signature
        // stability).
        let records = db.to_json().expect("dataset serializes").into_bytes();
        w.section(&records);
        w.section(&encode_weights(weights));
        w.section(&encode_forest(forest));
        w.section(&encode_signatures(signatures));
        let checksum = fnv1a64(&w.buf);
        w.u64(checksum);
        Snapshot { bytes: w.buf }
    }

    /// Decodes the snapshot back into a servable index.
    ///
    /// # Errors
    ///
    /// [`Error::Schema`] on any malformation: wrong magic or schema
    /// string, truncated sections, trailing garbage, checksum mismatch,
    /// or model state that fails validation.
    pub fn decode(&self) -> Result<ServeIndex, Error> {
        let buf = &self.bytes;
        if buf.len() < MAGIC.len() + 8 {
            return Err(schema(format!("{} bytes is too short for a snapshot", buf.len())));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(schema(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut r = Reader { buf: body, at: 0 };
        if r.take(MAGIC.len())? != MAGIC.as_slice() {
            return Err(schema("bad magic (not a patchdb snapshot)"));
        }
        let tag = r.str32()?;
        if tag != SCHEMA {
            return Err(schema(format!("unsupported snapshot schema {tag:?}")));
        }
        let sections = r.u32()?;
        if sections != SECTIONS {
            return Err(schema(format!("expected {SECTIONS} sections, found {sections}")));
        }
        let records = r.section()?;
        let weights = decode_weights(&r.section()?)?;
        let forest = decode_forest(&r.section()?)?;
        let signatures = decode_signatures(&r.section()?)?;
        if r.at != body.len() {
            return Err(schema(format!(
                "{} trailing bytes after the last section",
                body.len() - r.at
            )));
        }
        let text = std::str::from_utf8(&records)
            .map_err(|e| schema(format!("records section is not UTF-8: {e}")))?;
        let db = match PatchDb::from_json(text) {
            Ok(db) => db,
            // Inside a checksummed container, unparseable JSON is a
            // malformed snapshot, not a malformed user input.
            Err(e) => return Err(schema(format!("records section: {e}"))),
        };
        Ok(ServeIndex::from_parts(db, weights, forest, signatures))
    }

    /// The encoded byte size.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the encoded form is empty (never, for a real snapshot).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Writes the encoded snapshot to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        std::fs::write(path, &self.bytes).map_err(Error::Io)
    }

    /// Reads an encoded snapshot from `path`. Validation happens in
    /// [`Snapshot::decode`].
    pub fn read_from(path: impl AsRef<Path>) -> Result<Snapshot, Error> {
        Ok(Snapshot { bytes: std::fs::read(path).map_err(Error::Io)? })
    }
}

fn schema(msg: impl std::fmt::Display) -> Error {
    Error::Schema(format!("snapshot: {msg}"))
}

/// FNV-1a 64-bit over `bytes` — the trailing integrity check.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- section codecs ----

fn encode_weights(weights: &Weights) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(weights.as_slice().len() as u32);
    for &v in weights.as_slice() {
        w.f64(v);
    }
    w.buf
}

fn decode_weights(buf: &[u8]) -> Result<Weights, Error> {
    let mut r = Reader { buf, at: 0 };
    let n = r.u32()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(r.f64()?);
    }
    r.done()?;
    Weights::from_values(values).map_err(schema)
}

fn encode_forest(forest: Option<&RandomForest>) -> Vec<u8> {
    let mut w = Writer::default();
    let Some(forest) = forest else {
        w.buf.push(0);
        return w.buf;
    };
    w.buf.push(1);
    let state = forest.export_state();
    w.u64(state.n_trees as u64);
    w.u64(state.max_depth as u64);
    w.u64(state.seed);
    w.u32(state.trees.len() as u32);
    for tree in &state.trees {
        w.buf.push(match tree.criterion {
            SplitCriterion::Gini => 0,
            SplitCriterion::Entropy => 1,
        });
        w.u64(tree.max_depth as u64);
        w.u64(tree.root as u64);
        w.u32(tree.nodes.len() as u32);
        for node in &tree.nodes {
            match *node {
                NodeState::Leaf { prob } => {
                    w.buf.push(0);
                    w.f64(prob);
                }
                NodeState::Split { feature, threshold, left, right, prob } => {
                    w.buf.push(1);
                    w.u64(feature as u64);
                    w.f64(threshold);
                    w.u64(left as u64);
                    w.u64(right as u64);
                    w.f64(prob);
                }
            }
        }
    }
    w.buf
}

fn decode_forest(buf: &[u8]) -> Result<Option<RandomForest>, Error> {
    let mut r = Reader { buf, at: 0 };
    let present = r.u8()?;
    match present {
        0 => {
            r.done()?;
            return Ok(None);
        }
        1 => {}
        other => return Err(schema(format!("forest presence byte {other} is not 0/1"))),
    }
    let n_trees = r.u64()? as usize;
    let max_depth = r.u64()? as usize;
    let seed = r.u64()?;
    let count = r.u32()? as usize;
    let mut trees = Vec::with_capacity(count);
    for _ in 0..count {
        let criterion = match r.u8()? {
            0 => SplitCriterion::Gini,
            1 => SplitCriterion::Entropy,
            other => return Err(schema(format!("unknown split criterion {other}"))),
        };
        let tree_depth = r.u64()? as usize;
        let root = r.u64()? as usize;
        let node_count = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(match r.u8()? {
                0 => NodeState::Leaf { prob: r.f64()? },
                1 => NodeState::Split {
                    feature: r.u64()? as usize,
                    threshold: r.f64()?,
                    left: r.u64()? as usize,
                    right: r.u64()? as usize,
                    prob: r.f64()?,
                },
                other => return Err(schema(format!("unknown tree node tag {other}"))),
            });
        }
        trees.push(TreeState { criterion, max_depth: tree_depth, root, nodes });
    }
    r.done()?;
    RandomForest::from_state(ForestState { n_trees, max_depth, seed, trees })
        .map(Some)
        .map_err(schema)
}

fn encode_signatures(entries: &[SignatureEntry]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(entries.len() as u32);
    for e in entries {
        w.bytes(e.commit.as_bytes());
        match &e.cve_id {
            None => w.buf.push(0),
            Some(cve) => {
                w.buf.push(1);
                w.str32(cve);
            }
        }
        w.bytes(e.signature.commit.as_bytes());
        w.str_vec(&e.signature.vulnerable);
        w.str_vec(&e.signature.fixed);
    }
    w.buf
}

fn decode_signatures(buf: &[u8]) -> Result<Vec<SignatureEntry>, Error> {
    let mut r = Reader { buf, at: 0 };
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let commit = r.commit()?;
        let cve_id = match r.u8()? {
            0 => None,
            1 => Some(r.str32()?),
            other => return Err(schema(format!("cve presence byte {other} is not 0/1"))),
        };
        let sig_commit = r.commit()?;
        let vulnerable = r.str_vec()?;
        let fixed = r.str_vec()?;
        entries.push(SignatureEntry {
            commit,
            cve_id,
            signature: PatchSignature { commit: sig_commit, vulnerable, fixed },
        });
    }
    r.done()?;
    Ok(entries)
}

// ---- byte-level writer/reader ----

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str32(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn str_vec(&mut self, v: &[String]) {
        self.u32(v.len() as u32);
        for s in v {
            self.str32(s);
        }
    }
    /// One length-prefixed section.
    fn section(&mut self, payload: &[u8]) {
        self.u64(payload.len() as u64);
        self.bytes(payload);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                schema(format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.at,
                    self.buf.len().saturating_sub(self.at)
                ))
            })?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str32(&mut self) -> Result<String, Error> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|e| schema(format!("string at offset {} is not UTF-8: {e}", self.at - n)))
    }
    fn str_vec(&mut self) -> Result<Vec<String>, Error> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.str32()?);
        }
        Ok(out)
    }
    fn commit(&mut self) -> Result<CommitId, Error> {
        let b: [u8; 20] = self.take(20)?.try_into().expect("20 bytes");
        Ok(CommitId::from_bytes(b))
    }
    fn section(&mut self) -> Result<Vec<u8>, Error> {
        let len = self.u64()?;
        let len = usize::try_from(len)
            .map_err(|_| schema(format!("section length {len} overflows")))?;
        Ok(self.take(len)?.to_vec())
    }
    /// Asserts the payload was consumed exactly.
    fn done(&self) -> Result<(), Error> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(schema(format!("{} trailing bytes in section", self.buf.len() - self.at)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb::BuildOptions;

    fn built_index() -> ServeIndex {
        ServeIndex::build(PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db)
    }

    #[test]
    fn round_trip_preserves_every_endpoint_document() {
        let index = built_index();
        let snap = Snapshot::encode(&index);
        let loaded = snap.decode().expect("decode");
        assert_eq!(
            index.stats_json().to_pretty_string(),
            loaded.stats_json().to_pretty_string()
        );
        assert_eq!(index.signature_count(), loaded.signature_count());
        // Model scores must be bit-exact, not just close.
        let rows: Vec<Vec<f64>> = index
            .db()
            .records()
            .take(16)
            .map(|r| index.weighted_features(&r.patch))
            .collect();
        assert_eq!(index.score_rows(&rows), loaded.score_rows(&rows));
        let id = index.db().nvd[0].commit.to_string();
        assert_eq!(
            index.patch_json(&id).map(|j| j.to_pretty_string()),
            loaded.patch_json(&id).map(|j| j.to_pretty_string())
        );
    }

    #[test]
    fn file_round_trip_and_rejections() {
        let dir = std::env::temp_dir().join(format!("patchdb-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snapshot");
        let index = built_index();
        index.save_snapshot(&path).expect("save");
        let loaded = ServeIndex::load_snapshot(&path).expect("load");
        assert_eq!(loaded.signature_count(), index.signature_count());

        let bytes = std::fs::read(&path).unwrap();

        // Truncation, at several cut points.
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            let t = dir.join("trunc.snapshot");
            std::fs::write(&t, &bytes[..cut]).unwrap();
            assert!(
                matches!(ServeIndex::load_snapshot(&t), Err(Error::Schema(_))),
                "truncation at {cut} must be Error::Schema"
            );
        }

        // A flipped payload byte fails the checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let c = dir.join("corrupt.snapshot");
        std::fs::write(&c, &corrupt).unwrap();
        assert!(matches!(ServeIndex::load_snapshot(&c), Err(Error::Schema(_))));

        // A wrong version string (checksum re-stamped so only the
        // version check can object).
        let mut wrong = bytes.clone();
        let tag = SCHEMA.as_bytes();
        let pos = wrong
            .windows(tag.len())
            .position(|w| w == tag)
            .expect("schema tag present");
        wrong[pos + tag.len() - 1] = b'9';
        let len = wrong.len();
        let sum = fnv1a64(&wrong[..len - 8]);
        wrong[len - 8..].copy_from_slice(&sum.to_le_bytes());
        let v = dir.join("wrong-version.snapshot");
        std::fs::write(&v, &wrong).unwrap();
        match ServeIndex::load_snapshot(&v) {
            Err(Error::Schema(msg)) => assert!(msg.contains("unsupported"), "{msg}"),
            Err(e) => panic!("wrong version must be Error::Schema, got {e}"),
            Ok(_) => panic!("wrong version must not load"),
        }

        // Wrong magic entirely.
        let m = dir.join("magic.snapshot");
        std::fs::write(&m, b"NOTASNAPSHOTFILE----------------").unwrap();
        assert!(matches!(ServeIndex::load_snapshot(&m), Err(Error::Schema(_))));

        std::fs::remove_dir_all(&dir).ok();
    }
}
