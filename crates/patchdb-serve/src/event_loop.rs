//! The non-blocking front end: one event-loop thread owns the listener
//! and every connection, all in non-blocking mode, multiplexed over
//! `rt::net::poll`.
//!
//! Division of labor:
//!
//! * **This loop** accepts, reads, frames (via the incremental parser in
//!   [`crate::http`]), admits *complete* requests to the bounded worker
//!   queue, and writes responses — so a worker never blocks on a slow
//!   or stalled client, in either direction.
//! * **Workers** pop framed requests, run the endpoint, and hand the
//!   rendered response back through [`LoopShared::complete`], which
//!   wakes the loop via the self-pipe [`net::Waker`].
//!
//! Pipelining: requests on one connection are assigned ascending
//! sequence numbers at admission; completions may arrive out of order
//! (workers race, identify detours through the batcher) and park in a
//! per-connection `BTreeMap` until their turn, so response *bytes* are
//! always written in request order. Each response goes out with one
//! `write_vectored` of `[head, body]`; unread remainders wait in the
//! connection's outbox for `POLLOUT`.
//!
//! Lifecycle per connection:
//!
//! ```text
//!            ┌────────────────────────────────────┐
//!            ▼                                    │ keep-alive
//! accept → IDLE → READING → ADMITTED → WRITING ───┤
//!            │        │         │          │      │ close / cap /
//!            │        │         │          ▼      ▼ drain
//!            └────────┴─────────┴───────→ CLOSED
//!           idle timeout   partial-request deadline   EOF / error
//! ```
//!
//! Shutdown is cooperative: the server flips a stop flag and wakes the
//! loop; the loop stops accepting, marks every connection
//! close-after-response, grants in-flight (and still-arriving) requests
//! until the drain deadline, and exits once the last connection closes
//! — no throwaway wake-up connection.

use std::collections::{BTreeMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use patchdb_rt::net::{self, PollFd, POLLIN, POLLOUT};
use patchdb_rt::obs;
use patchdb_rt::queue::BoundedQueue;

use crate::handle::{reload, IndexHandle, ReloadSource};
use crate::http::{render_head, RequestParser, Response};
use crate::server::{ServeConfig, Work};
use crate::telemetry::{elapsed_ns, elapsed_since, RequestRecord, Telemetry};

/// Upper bound on admitted-but-unanswered requests per connection; a
/// client pipelining deeper than this stops being read until responses
/// drain (read-side backpressure, not an error).
const MAX_PIPELINED: usize = 128;

/// Timer-wheel granularity. Deadlines fire at most one tick late.
const TICK_MS: u64 = 50;
/// Wheel horizon = `TICK_MS * WHEEL_SLOTS`; later deadlines clamp to the
/// last slot and reschedule when popped (lazy re-check makes this safe).
const WHEEL_SLOTS: usize = 1024;

/// A finished response traveling back to the event loop.
pub(crate) struct Completion {
    /// Connection slot the response belongs to.
    pub slot: usize,
    /// Generation guard: stale completions for a recycled slot are
    /// dropped instead of corrupting an unrelated connection.
    pub generation: u64,
    /// Position in the connection's response order.
    pub seq: u64,
    /// The request's clock origin (for `total_ns` at write completion).
    pub started: Instant,
    /// Rendered response head (status line through blank line).
    pub head: Vec<u8>,
    /// Response body, byte-identical across worker counts and modes.
    pub body: Vec<u8>,
    /// The request's telemetry record, observed once the bytes are out.
    pub rec: RequestRecord,
    /// Close the connection after this response is written.
    pub close_after: bool,
}

/// The mailbox + waker pair workers and the batcher complete through.
pub(crate) struct LoopShared {
    mailbox: Mutex<Vec<Completion>>,
    waker: net::Waker,
}

impl LoopShared {
    pub fn new(waker: net::Waker) -> LoopShared {
        LoopShared { mailbox: Mutex::new(Vec::new()), waker }
    }

    /// Publishes a completion and wakes the loop. The push happens
    /// before the wake, so the loop always finds the completion once
    /// woken.
    pub fn complete(&self, completion: Completion) {
        self.mailbox.lock().unwrap().push(completion);
        self.waker.wake();
    }

    /// Wakes the loop without a completion (shutdown nudge).
    pub fn wake(&self) {
        self.waker.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.mailbox.lock().unwrap())
    }

    /// Drains the mailbox outside a running loop (unit tests only).
    #[cfg(test)]
    pub fn take_for_test(&self) -> Vec<Completion> {
        self.take()
    }
}

/// One response staged for (or mid-) write.
struct Outgoing {
    head: Vec<u8>,
    body: Vec<u8>,
    written: usize,
    started: Instant,
    write_started: Option<Instant>,
    rec: RequestRecord,
    close_after: bool,
}

/// Why a connection is being torn down; selects the terminal counter
/// and record classification.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Protocol-clean: close-after-response written, or EOF between
    /// requests.
    Clean,
    /// EOF or read error mid-request: the client hung up.
    Disconnect,
    /// Partial request (or stalled reader) outlived its deadline.
    Deadline,
    /// The socket refused our response bytes.
    WriteFailed,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    generation: u64,
    /// Clock origin for the request currently being framed: the accept
    /// instant for the first request, the first byte's arrival after.
    req_started: Option<Instant>,
    /// Accept-to-registration duration, charged to the first request.
    accept_ns: u64,
    first_request: bool,
    /// Next sequence number to assign at admission.
    next_seq: u64,
    /// Next sequence number eligible to enter the outbox.
    next_out: u64,
    /// Admitted-but-not-fully-written responses (inflight + parked +
    /// outbox) — the pipelining depth.
    pending: usize,
    parked: BTreeMap<u64, Outgoing>,
    outbox: VecDeque<Outgoing>,
    served: u64,
    /// Stop reading; close once this sequence number has been written.
    close_after: Option<u64>,
    read_closed: bool,
    idle_since: Instant,
    /// Last time response bytes left the socket (write-stall guard).
    last_progress: Instant,
    deadline_at: Option<Instant>,
}

impl Conn {
    /// Whether the loop should ask for read readiness.
    fn wants_read(&self) -> bool {
        !self.read_closed && self.close_after.is_none() && self.pending < MAX_PIPELINED
    }
}

/// A low-resolution hashed timer wheel with lazy re-validation: entries
/// are (slot, generation) hints; popping one re-checks the connection's
/// authoritative `deadline_at` and reschedules if it moved. Stale
/// entries (connection closed, deadline pushed back) cost one pop each.
struct TimerWheel {
    epoch: Instant,
    cursor: u64,
    slots: Vec<Vec<(usize, u64)>>,
}

impl TimerWheel {
    fn new(epoch: Instant) -> TimerWheel {
        TimerWheel { epoch, cursor: 0, slots: vec![Vec::new(); WHEEL_SLOTS] }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.epoch).as_millis() as u64) / TICK_MS
    }

    fn schedule(&mut self, at: Instant, slot: usize, generation: u64) {
        let tick = self.tick_of(at).max(self.cursor);
        let tick = tick.min(self.cursor + WHEEL_SLOTS as u64 - 1);
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push((slot, generation));
    }

    /// Pops every entry whose tick has passed.
    fn take_due(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let now_tick = self.tick_of(now);
        let mut due = Vec::new();
        while self.cursor <= now_tick {
            let idx = (self.cursor % WHEEL_SLOTS as u64) as usize;
            due.append(&mut self.slots[idx]);
            self.cursor += 1;
        }
        due
    }

    /// Milliseconds until the next scheduled entry, `-1` when empty.
    fn next_timeout_ms(&self, now: Instant) -> i32 {
        for offset in 0..WHEEL_SLOTS as u64 {
            let tick = self.cursor + offset;
            if !self.slots[(tick % WHEEL_SLOTS as u64) as usize].is_empty() {
                let fires_at_ms = (tick + 1) * TICK_MS;
                let now_ms = now.saturating_duration_since(self.epoch).as_millis() as u64;
                return fires_at_ms.saturating_sub(now_ms).min(i32::MAX as u64) as i32;
            }
        }
        -1
    }
}

pub(crate) struct EventLoop {
    listener: TcpListener,
    queue: Arc<BoundedQueue<Work>>,
    shared: Arc<LoopShared>,
    wake_rx: net::WakeReader,
    stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
    keep_alive: bool,
    idle_timeout: Duration,
    /// `u64::MAX` when unlimited.
    max_requests: u64,
    max_conns: usize,
    deadline: Duration,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    open: usize,
    wheel: TimerWheel,
    draining: Option<Instant>,
    /// Fds dispatched since the last coalesced `loop.tick` flight event.
    tick_accum: u64,
    /// Next instant a coalesced `loop.tick` flight event may be emitted.
    next_tick_emit: Option<Instant>,
    /// The live index handle; every admitted request pins the current
    /// generation here.
    handle: IndexHandle,
    /// SIGHUP rebuild source (`None` = the signal is ignored).
    reload: Option<ReloadSource>,
    /// Shard count for SIGHUP rebuilds.
    shards: usize,
    /// Last process second the tsdb sampler and SLO evaluation ran for;
    /// the loop drives both once per second from its own thread.
    last_sampled_s: u64,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        listener: TcpListener,
        queue: Arc<BoundedQueue<Work>>,
        shared: Arc<LoopShared>,
        wake_rx: net::WakeReader,
        stop: Arc<AtomicBool>,
        telemetry: Arc<Telemetry>,
        config: &ServeConfig,
        handle: IndexHandle,
    ) -> EventLoop {
        EventLoop {
            listener,
            queue,
            shared,
            wake_rx,
            stop,
            telemetry,
            keep_alive: config.keep_alive,
            idle_timeout: Duration::from_millis(config.idle_timeout_ms.max(1)),
            max_requests: if config.max_requests_per_conn == 0 {
                u64::MAX
            } else {
                config.max_requests_per_conn
            },
            max_conns: config.max_conns.max(1),
            deadline: Duration::from_millis(config.deadline_ms.max(1)),
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            open: 0,
            wheel: TimerWheel::new(Instant::now()),
            draining: None,
            tick_accum: 0,
            next_tick_emit: None,
            handle,
            reload: config.reload_source(),
            shards: config.shards.max(1),
            last_sampled_s: u64::MAX,
        }
    }

    /// Runs until shutdown completes; closes the worker queue on exit so
    /// the pool drains and joins.
    ///
    /// Each iteration is instrumented for the loop-health report:
    /// `serve.loop.poll_wait_ns` vs `serve.loop.work_ns` split the
    /// loop's life into "asleep in poll" and "dispatching", wakeup-cause
    /// counters (`serve.loop.wake.{waker,listener,readable,writable,
    /// timer}`) say *why* it woke, `serve.loop.dispatched_fds` sizes
    /// each tick, and `serve.loop.lag_ns` measures how long a ready fd
    /// waited behind its siblings before its handler ran. A `loop.tick`
    /// flight event journals every iteration.
    pub fn run(mut self) {
        let mut read_buf = vec![0u8; 64 * 1024];
        let mut pollfds: Vec<PollFd> = Vec::new();
        // (slot, generation) for each conn entry in `pollfds`, in order.
        let mut index: Vec<(usize, u64)> = Vec::new();
        // Start of the current work phase (the last poll return).
        let mut work_started: Option<Instant> = None;
        loop {
            if self.draining.is_none() && self.stop.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining.is_some() && self.open == 0 {
                break;
            }

            pollfds.clear();
            index.clear();
            pollfds.push(PollFd::new(&self.wake_rx, POLLIN));
            // The listener stays armed even at the connection cap:
            // over-cap arrivals are answered 503 and closed rather than
            // left to rot in the backlog.
            let accepting = self.draining.is_none();
            if accepting {
                pollfds.push(PollFd::new(&self.listener, POLLIN));
            }
            let base = pollfds.len();
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let mut events = 0i16;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if !conn.outbox.is_empty() {
                    events |= POLLOUT;
                }
                // Zero-interest conns are still registered: POLLERR and
                // POLLHUP are always reported, so dead peers are noticed
                // even while pipeline-capped.
                pollfds.push(PollFd::new(&conn.stream, events));
                index.push((slot, conn.generation));
            }

            let timeout = self.wheel.next_timeout_ms(Instant::now());
            // With the tracing layer on, the loop must wake at least
            // once per second so the tsdb sampler and SLO evaluation
            // tick even on an idle server — history with holes reads as
            // an outage. One spurious wake per idle second is noise next
            // to the timer wheel's 50 ms granularity under any load.
            let timeout = if crate::tracing_enabled() {
                if timeout < 0 { 1000 } else { timeout.min(1000) }
            } else {
                timeout
            };
            if let Some(t) = work_started.take() {
                obs::hist_record("serve.loop.work_ns", elapsed_ns(t));
            }
            let poll_started = Instant::now();
            let polled = {
                let _poll = obs::sampler::frame("loop.poll");
                net::poll(&mut pollfds, timeout)
            };
            let woke = Instant::now();
            work_started = Some(woke);
            obs::hist_record("serve.loop.poll_wait_ns", elapsed_since(poll_started, woke));
            if polled.is_err() {
                continue;
            }
            if pollfds[0].readable() {
                obs::counter_add_quiet("serve.loop.wake.waker", 1);
                self.wake_rx.drain();
            }
            // Completions are drained unconditionally — a waker byte can
            // coalesce behind socket traffic.
            self.drain_completions();
            // Once per process second: sample every registry metric into
            // the tsdb and re-evaluate the SLO burn rates. Runs on the
            // loop thread so no extra thread exists just to observe.
            let now_s = obs::process_second();
            if crate::tracing_enabled() && now_s != self.last_sampled_s {
                self.last_sampled_s = now_s;
                obs::tsdb::sample_registry(now_s);
                self.telemetry.slo().publish_gauges(now_s);
            }
            // SIGHUP lands here: the handler wrote a byte to the same
            // self-pipe, so the poll woke up and the flag is fresh. The
            // rebuild runs on its own thread — the loop (and every
            // in-flight request) keeps serving the old generation until
            // the atomic swap lands.
            if net::take_sighup() {
                self.sighup_reload();
            }
            if accepting && pollfds[base - 1].readable() {
                obs::counter_add_quiet("serve.loop.wake.listener", 1);
                self.accept_ready();
            }
            let mut dispatched: u64 = 0;
            let mut readable: u64 = 0;
            let mut writable: u64 = 0;
            let mut lag = obs::Hist::default();
            for (i, &(slot, generation)) in index.iter().enumerate() {
                let revents = pollfds[base + i].revents();
                if revents == 0 {
                    continue;
                }
                dispatched += 1;
                lag.record(elapsed_since(woke, Instant::now()));
                if self.generation_of(slot) != Some(generation) {
                    continue; // closed (and maybe recycled) this iteration
                }
                if pollfds[base + i].readable() {
                    readable += 1;
                    self.read_ready(slot, &mut read_buf);
                }
                if self.generation_of(slot) == Some(generation)
                    && pollfds[base + i].writable()
                {
                    writable += 1;
                    self.write_ready(slot);
                }
                // A zero-interest conn (pipeline-capped or close-after
                // with its response still at a worker) gets POLLERR/
                // POLLHUP reported unconditionally, and the handlers
                // above made no progress — without this, poll returns
                // ready immediately forever and the loop spins at 100%
                // CPU until (unless) the worker completes. The socket
                // is dead either way: tear it down now; the in-flight
                // completion lands on a stale generation and is banked
                // by drain_completions.
                if self.generation_of(slot) == Some(generation)
                    && pollfds[base + i].hangup()
                {
                    let conn = self.conns[slot].as_ref().expect("live slot");
                    if !conn.wants_read() && conn.outbox.is_empty() {
                        let reason = if conn.pending > 0 || conn.parser.has_partial() {
                            CloseReason::Disconnect
                        } else {
                            CloseReason::Clean
                        };
                        self.close_conn(slot, reason);
                    }
                }
            }
            if readable > 0 {
                obs::counter_add_quiet("serve.loop.wake.readable", readable);
            }
            if writable > 0 {
                obs::counter_add_quiet("serve.loop.wake.writable", writable);
            }
            if lag.count() > 0 {
                obs::hist_merge("serve.loop.lag_ns", &lag);
            }
            obs::hist_record("serve.loop.dispatched_fds", dispatched);
            let now = Instant::now();
            // The journaled tick is a liveness heartbeat, not a
            // per-iteration log: at most one `loop.tick` event per
            // millisecond, carrying the fds dispatched since the last
            // one. Journaling every iteration at six-figure tick rates
            // crowded the ring down to tens of milliseconds of history
            // and put a clock read plus ring push on every spin of the
            // loop's critical path; coalesced, the same ring holds
            // seconds of loop liveness. (`serve.loop.dispatched_fds`
            // above still sizes individual iterations.)
            self.tick_accum += dispatched;
            if self.next_tick_emit.map_or(true, |t| now >= t) {
                obs::flight::record(obs::flight::FlightKind::Tick, "loop.tick", self.tick_accum);
                self.tick_accum = 0;
                self.next_tick_emit = Some(now + Duration::from_millis(1));
            }
            let due = self.wheel.take_due(now);
            if !due.is_empty() {
                obs::counter_add_quiet("serve.loop.wake.timer", due.len() as u64);
            }
            for (slot, generation) in due {
                if self.generation_of(slot) == Some(generation) {
                    self.timer_due(slot, now);
                }
            }
        }
        // Workers drain the remaining queue (requests from connections
        // that died waiting) and exit.
        self.queue.close();
    }

    fn generation_of(&self, slot: usize) -> Option<u64> {
        self.conns.get(slot).and_then(|c| c.as_ref()).map(|c| c.generation)
    }

    /// Kicks off a SIGHUP-driven reload on a spawned thread. Failures
    /// are counted and logged, never fatal — the old generation keeps
    /// serving.
    fn sighup_reload(&self) {
        let Some(source) = self.reload.clone() else { return };
        obs::counter_add("serve.index.sighup", 1);
        let handle = self.handle.clone();
        let shards = self.shards;
        let spawned = std::thread::Builder::new()
            .name("patchdb-serve-reload".into())
            .spawn(move || {
                if let Err(e) = reload(&handle, &source, shards) {
                    obs::counter_add("serve.index.reload_failed", 1);
                    eprintln!("patchdb-serve: SIGHUP reload failed: {e}");
                }
            });
        if spawned.is_err() {
            obs::counter_add("serve.index.reload_failed", 1);
        }
    }

    fn begin_drain(&mut self) {
        let now = Instant::now();
        self.draining = Some(now);
        let drain_deadline = now + self.deadline;
        let slots: Vec<usize> =
            (0..self.conns.len()).filter(|&s| self.conns[s].is_some()).collect();
        for slot in slots {
            let conn = self.conns[slot].as_mut().expect("live slot");
            // Idle keep-alive connections that already got an answer had
            // their turn: close them now. Connections that never served
            // a request (accepted just before shutdown) keep their grace
            // until the drain deadline, and anything with buffered or
            // in-flight work drains normally.
            if conn.served > 0 && conn.pending == 0 && !conn.parser.has_partial() {
                self.close_conn(slot, CloseReason::Clean);
                continue;
            }
            let conn = self.conns[slot].as_mut().expect("live slot");
            let at = conn.deadline_at.map_or(drain_deadline, |d| d.min(drain_deadline));
            conn.deadline_at = Some(at);
            let generation = conn.generation;
            self.wheel.schedule(at, slot, generation);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if self.draining.is_some() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let accepted = Instant::now();
                    obs::counter_add("serve.accepted", 1);
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let over_capacity = self.open >= self.max_conns;
                    let slot = self.register(stream, accepted);
                    if over_capacity {
                        // Connection-level shed: answer 503 and close
                        // without reading a byte.
                        obs::counter_add("serve.rejected_503", 1);
                        self.shed(slot, accepted, "shed");
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (ECONNABORTED, EMFILE): retry next wake
            }
        }
    }

    fn register(&mut self, stream: TcpStream, accepted: Instant) -> usize {
        self.next_generation += 1;
        let conn = Conn {
            stream,
            parser: RequestParser::default(),
            generation: self.next_generation,
            req_started: Some(accepted),
            accept_ns: elapsed_ns(accepted),
            first_request: true,
            next_seq: 0,
            next_out: 0,
            pending: 0,
            parked: BTreeMap::new(),
            outbox: VecDeque::new(),
            served: 0,
            close_after: None,
            read_closed: false,
            idle_since: accepted,
            last_progress: accepted,
            deadline_at: None,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.open += 1;
        obs::gauge_add("serve.open_conns", 1);
        self.refresh_deadline(slot);
        slot
    }

    /// Queues a local 503 for `slot` and marks it close-after. Used for
    /// both connection-capacity and admission-queue shedding.
    fn shed(&mut self, slot: usize, started: Instant, endpoint: &'static str) {
        let conn = self.conns[slot].as_mut().expect("live slot");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending += 1;
        conn.close_after = Some(seq);
        let generation = conn.generation;
        obs::gauge_add("serve.inflight", 1);
        let mut rec = RequestRecord::admitted(self.telemetry.next_id(), 0);
        rec.endpoint = endpoint;
        rec.status = 503;
        let response = Response::overloaded(1);
        let head = render_head(&response, false, Some((rec.id, &rec.trace)));
        self.deliver_local(Completion {
            slot,
            generation,
            seq,
            started,
            head,
            body: response.body,
            rec,
            close_after: true,
        });
    }

    /// Inserts a loop-built completion exactly as if a worker had sent
    /// it (status counter included; `rec.status` must be set), then
    /// tries to flush.
    fn deliver_local(&mut self, completion: Completion) {
        obs::counter_add(&crate::server::status_counter(completion.rec.status), 1);
        self.park(completion);
    }

    fn drain_completions(&mut self) {
        for completion in self.shared.take() {
            if self.generation_of(completion.slot) != Some(completion.generation) {
                // The connection died while its request was in flight.
                // The work still happened; bank the record.
                obs::counter_add("serve.write_failed", 1);
                obs::gauge_add("serve.inflight", -1);
                let mut rec = completion.rec;
                rec.total_ns = elapsed_ns(completion.started);
                self.telemetry.observe(rec);
                continue;
            }
            self.park(completion);
        }
    }

    /// Parks a completion until its turn in the response order, promotes
    /// every in-order response to the outbox, and attempts the write.
    fn park(&mut self, completion: Completion) {
        let slot = completion.slot;
        let conn = self.conns[slot].as_mut().expect("generation checked");
        conn.parked.insert(
            completion.seq,
            Outgoing {
                head: completion.head,
                body: completion.body,
                written: 0,
                started: completion.started,
                write_started: None,
                rec: completion.rec,
                close_after: completion.close_after,
            },
        );
        while let Some(next) = conn.parked.remove(&conn.next_out) {
            conn.outbox.push_back(next);
            conn.next_out += 1;
        }
        self.write_ready(slot);
    }

    fn read_ready(&mut self, slot: usize, buf: &mut [u8]) {
        loop {
            let conn = self.conns[slot].as_mut().expect("live slot");
            if !conn.wants_read() {
                break;
            }
            match conn.stream.read(buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    if conn.parser.has_partial() {
                        // Mid-request hangup: nobody is left to answer.
                        self.close_conn(slot, CloseReason::Disconnect);
                        return;
                    }
                    // Clean half-close between requests: serve whatever
                    // is still pending, then close.
                    if conn.pending == 0 {
                        self.close_conn(slot, CloseReason::Clean);
                        return;
                    }
                    break;
                }
                Ok(n) => {
                    let now = Instant::now();
                    let conn = self.conns[slot].as_mut().expect("live slot");
                    if conn.req_started.is_none() {
                        conn.req_started = Some(now);
                    }
                    conn.parser.feed(&buf[..n]);
                    if !self.pump_parser(slot) {
                        return; // connection closed during admission
                    }
                    if n < buf.len() {
                        break; // short read: the socket is drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let partial = self.conns[slot]
                        .as_ref()
                        .is_some_and(|c| c.parser.has_partial() || c.pending > 0);
                    let reason = if partial {
                        CloseReason::Disconnect
                    } else {
                        CloseReason::Clean
                    };
                    self.close_conn(slot, reason);
                    return;
                }
            }
        }
        self.refresh_deadline(slot);
    }

    /// Frames and admits every complete request buffered on `slot`.
    /// Returns false if the connection was closed.
    fn pump_parser(&mut self, slot: usize) -> bool {
        loop {
            let conn = self.conns[slot].as_mut().expect("live slot");
            if conn.pending >= MAX_PIPELINED {
                return true; // backpressure: stop framing until writes drain
            }
            match conn.parser.next_request() {
                Ok(None) => return true,
                Ok(Some(parsed)) => {
                    let now = Instant::now();
                    let started = conn.req_started.take().unwrap_or(now);
                    let accept_ns = if conn.first_request { conn.accept_ns } else { 0 };
                    conn.first_request = false;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending += 1;
                    conn.served += 1;
                    let close_after = self.draining.is_some()
                        || !self.keep_alive
                        || !parsed.keep_alive
                        || conn.served >= self.max_requests;
                    if close_after {
                        conn.close_after = Some(seq);
                    }
                    // The next request's clock starts when its first
                    // byte arrived; pipelined leftovers are "arriving"
                    // right now.
                    if conn.parser.has_partial() {
                        conn.req_started = Some(now);
                    }
                    let generation = conn.generation;
                    let mut rec = RequestRecord::admitted(self.telemetry.next_id(), accept_ns);
                    rec.method = parsed.request.method.clone();
                    rec.path = parsed.request.path.clone();
                    rec.parse_ns = elapsed_ns(started).saturating_sub(accept_ns);
                    if let Some(trace) = parsed.trace {
                        rec.trace = trace;
                        rec.trace_supplied = true;
                    }
                    obs::gauge_add("serve.inflight", 1);
                    obs::gauge_add("serve.queue_depth", 1);
                    let rec_id = rec.id;
                    // Pin the index generation at admission: this
                    // request answers from this exact index/cache no
                    // matter when a swap lands.
                    let index_gen = self.handle.load();
                    rec.generation = index_gen.number;
                    let work = Work {
                        request: parsed.request,
                        slot,
                        generation,
                        seq,
                        started,
                        deadline: started + self.deadline,
                        close_after,
                        enqueued: Instant::now(),
                        rec,
                        index_gen,
                    };
                    if let Err(refused) = self.queue.try_push(work) {
                        // Admission backpressure: shed this request with
                        // the retry hint and close the connection (its
                        // response order would otherwise gap).
                        obs::gauge_add("serve.queue_depth", -1);
                        obs::counter_add("serve.rejected_503", 1);
                        let mut work = refused.into_inner();
                        let conn = self.conns[slot].as_mut().expect("live slot");
                        conn.close_after = Some(seq);
                        work.rec.endpoint = "shed";
                        work.rec.status = 503;
                        let mut response = Response::overloaded(1);
                        if work.rec.trace_supplied {
                            response = response.with_trace(&work.rec.trace);
                        }
                        let head =
                            render_head(&response, false, Some((work.rec.id, &work.rec.trace)));
                        self.deliver_local(Completion {
                            slot,
                            generation,
                            seq,
                            started: work.started,
                            head,
                            body: response.body,
                            rec: work.rec,
                            close_after: true,
                        });
                        return self.generation_of(slot) == Some(generation);
                    }
                    obs::flight::record(
                        obs::flight::FlightKind::Queue,
                        "serve.queue.push",
                        rec_id,
                    );
                }
                Err(frame_error) => {
                    // Malformed/oversized framing: answer and close. The
                    // parser is poisoned, so no further requests follow.
                    let now = Instant::now();
                    let started = conn.req_started.take().unwrap_or(now);
                    let accept_ns = if conn.first_request { conn.accept_ns } else { 0 };
                    conn.first_request = false;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending += 1;
                    conn.close_after = Some(seq);
                    let generation = conn.generation;
                    let mut rec = RequestRecord::admitted(self.telemetry.next_id(), accept_ns);
                    rec.endpoint = "parse";
                    rec.parse_ns = elapsed_ns(started).saturating_sub(accept_ns);
                    let response = frame_error.response();
                    rec.status = response.status;
                    obs::gauge_add("serve.inflight", 1);
                    let head = render_head(&response, false, Some((rec.id, &rec.trace)));
                    self.deliver_local(Completion {
                        slot,
                        generation,
                        seq,
                        started,
                        head,
                        body: response.body,
                        rec,
                        close_after: true,
                    });
                    return self.generation_of(slot) == Some(generation);
                }
            }
        }
    }

    fn write_ready(&mut self, slot: usize) {
        loop {
            let conn = self.conns[slot].as_mut().expect("live slot");
            let Some(out) = conn.outbox.front_mut() else { break };
            if out.write_started.is_none() {
                out.write_started = Some(Instant::now());
            }
            let head_remaining = out.head.len().saturating_sub(out.written);
            let total = out.head.len() + out.body.len();
            let result = if head_remaining > 0 {
                conn.stream.write_vectored(&[
                    IoSlice::new(&out.head[out.written..]),
                    IoSlice::new(&out.body),
                ])
            } else {
                conn.stream.write(&out.body[out.written - out.head.len()..])
            };
            match result {
                Ok(0) => {
                    self.close_conn(slot, CloseReason::WriteFailed);
                    return;
                }
                Ok(n) => {
                    out.written += n;
                    conn.last_progress = Instant::now();
                    if out.written < total {
                        continue; // partial write: try once more, then POLLOUT
                    }
                    let mut finished = conn.outbox.pop_front().expect("front exists");
                    conn.pending -= 1;
                    if conn.pending == 0 {
                        conn.idle_since = Instant::now();
                    }
                    finished.rec.write_ns =
                        finished.write_started.map_or(0, elapsed_ns);
                    finished.rec.total_ns = elapsed_ns(finished.started);
                    obs::gauge_add("serve.inflight", -1);
                    self.telemetry.observe(finished.rec);
                    if finished.close_after {
                        self.close_conn(slot, CloseReason::Clean);
                        return;
                    }
                    let conn = self.conns[slot].as_mut().expect("live slot");
                    if conn.pending == 0
                        && (conn.read_closed
                            || (self.draining.is_some() && !conn.parser.has_partial()))
                    {
                        // Half-closed peers and drained-out keep-alive
                        // conns are done once the last response is out.
                        self.close_conn(slot, CloseReason::Clean);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot, CloseReason::WriteFailed);
                    return;
                }
            }
        }
        self.refresh_deadline(slot);
    }

    /// Recomputes the connection's earliest deadline and (re)schedules
    /// it on the wheel. Cheap enough to call after every state change;
    /// stale wheel entries re-validate lazily.
    fn refresh_deadline(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        let mut deadline: Option<Instant> = None;
        let mut consider = |at: Instant| {
            deadline = Some(deadline.map_or(at, |d: Instant| d.min(at)));
        };
        if conn.parser.has_partial() {
            if let Some(started) = conn.req_started {
                consider(started + self.deadline);
            }
        }
        if conn.pending == 0 && !conn.parser.has_partial() {
            consider(conn.idle_since + self.idle_timeout);
        }
        if !conn.outbox.is_empty() {
            consider(conn.last_progress + self.idle_timeout);
        }
        if let Some(drain_started) = self.draining {
            consider(drain_started + self.deadline);
        }
        conn.deadline_at = deadline;
        if let Some(at) = deadline {
            let generation = conn.generation;
            self.wheel.schedule(at, slot, generation);
        }
    }

    fn timer_due(&mut self, slot: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        match conn.deadline_at {
            None => {}
            Some(at) if at > now => {
                // The deadline moved since this entry was scheduled.
                let generation = conn.generation;
                self.wheel.schedule(at, slot, generation);
            }
            Some(_) => {
                let reason = if conn.parser.has_partial() || !conn.outbox.is_empty() {
                    CloseReason::Deadline
                } else {
                    // Idle (or drained-idle) connection: close silently.
                    CloseReason::Clean
                };
                if reason == CloseReason::Clean {
                    obs::counter_add("serve.idle_closed", 1);
                }
                self.close_conn(slot, reason);
            }
        }
    }

    fn close_conn(&mut self, slot: usize, reason: CloseReason) {
        let Some(mut conn) = self.conns[slot].take() else { return };
        self.free.push(slot);
        self.open -= 1;
        obs::gauge_add("serve.open_conns", -1);

        // A partial request that will never complete gets a terminal
        // record so hangups and deadline expiries stay observable.
        match reason {
            CloseReason::Disconnect if conn.parser.has_partial() => {
                obs::counter_add("serve.read_failed", 1);
                let mut rec =
                    RequestRecord::admitted(self.telemetry.next_id(), conn.accept_ns);
                rec.endpoint = "disconnect";
                if let Some(started) = conn.req_started {
                    rec.total_ns = elapsed_ns(started);
                }
                self.telemetry.observe(rec);
            }
            CloseReason::Deadline => {
                obs::counter_add("serve.deadline_expired", 1);
                if conn.parser.has_partial() {
                    let mut rec =
                        RequestRecord::admitted(self.telemetry.next_id(), conn.accept_ns);
                    rec.endpoint = "deadline";
                    if let Some(started) = conn.req_started {
                        rec.total_ns = elapsed_ns(started);
                    }
                    self.telemetry.observe(rec);
                }
            }
            _ => {}
        }

        // Unwritten responses died with the socket: bank their records.
        let unwritten =
            conn.outbox.drain(..).chain(std::mem::take(&mut conn.parked).into_values());
        for out in unwritten {
            obs::counter_add("serve.write_failed", 1);
            obs::gauge_add("serve.inflight", -1);
            let mut rec = out.rec;
            rec.total_ns = elapsed_ns(out.started);
            self.telemetry.observe(rec);
        }
        // In-flight requests still at the workers complete into a stale
        // generation and are banked by drain_completions.
        drop(conn);
    }
}
