//! The in-memory query index: everything hot paths need, precomputed at
//! load time so no request ever re-parses or re-fits anything.

use std::collections::HashMap;
use std::path::Path;

use patch_core::{CommitId, Patch};
use patchdb::{
    classify_patch, signatures_of, test_presence, DatasetStats, Error, PatchCategory, PatchDb,
    PatchSignature, PresenceVerdict, Source, ALL_CATEGORIES,
};
use patchdb_features::{apply_weights, extract, learn_weights, Weights};
use patchdb_ml::{Classifier, Dataset, RandomForest};
use patchdb_rt::json::Json;
use patchdb_rt::obs;

use crate::snapshot::Snapshot;

/// One precompiled signature plus the provenance the scan response needs.
#[derive(Debug, Clone)]
pub(crate) struct SignatureEntry {
    pub(crate) commit: CommitId,
    pub(crate) cve_id: Option<String>,
    pub(crate) signature: PatchSignature,
}

/// One vulnerable-clone hit from [`ServeIndex::scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanMatch {
    /// Commit of the security patch whose vulnerable shape matched.
    pub commit: CommitId,
    /// Its CVE id, when NVD-sourced (`None` for silent fixes).
    pub cve_id: Option<String>,
}

/// Everything [`ServeIndex::scan`] learned about one target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Vulnerable-clone hits (the interesting ones), in index order.
    pub matches: Vec<ScanMatch>,
    /// Signatures whose *fix* shape matched: the patch is present.
    pub patched: usize,
}

/// The server's read-only view of a built dataset: the dataset itself, a
/// pre-fit random-forest security identifier over weighted Table I
/// features, and the precompiled vulnerability-signature index.
///
/// Built once at load time; shared immutably by every worker thread.
pub struct ServeIndex {
    db: PatchDb,
    weights: Weights,
    forest: Option<RandomForest>,
    signatures: Vec<SignatureEntry>,
}

impl ServeIndex {
    /// Seed of the served identifier model. Fixed so that two servers
    /// over the same dataset answer identically (the determinism test
    /// relies on this), independent of any pipeline seed.
    pub const MODEL_SEED: u64 = 0x5e7e;

    /// Number of trees / depth bound of the served forest — the Table VI
    /// configuration.
    const FOREST_SHAPE: (usize, usize) = (24, 10);

    /// Precomputes the index from a built dataset: learns the Table I
    /// feature weights over the natural records, fits the random-forest
    /// identifier (security vs non-security), and compiles the
    /// vulnerability signatures of every security patch.
    pub fn build(db: PatchDb) -> ServeIndex {
        let _build = obs::span("serve.index.build");
        let weights = {
            let _s = obs::span("serve.index.learn_weights");
            learn_weights(db.records().map(|r| &r.features))
        };
        let forest = {
            let _s = obs::span("serve.index.fit_forest");
            let rows: Vec<Vec<f64>> = db
                .records()
                .map(|r| apply_weights(&r.features, &weights).as_slice().to_vec())
                .collect();
            let labels: Vec<bool> =
                db.records().map(|r| r.source != Source::NonSecurity).collect();
            let n_pos = labels.iter().filter(|&&l| l).count();
            // A one-class dataset can't train a discriminator; the identify
            // endpoint then reports the uninformative 0.5 rather than lying.
            (n_pos > 0 && n_pos < labels.len())
                .then(|| {
                    Dataset::new(rows, labels).ok().map(|data| {
                        let (trees, depth) = Self::FOREST_SHAPE;
                        let mut rf = RandomForest::new(trees, depth, Self::MODEL_SEED);
                        rf.fit(&data);
                        rf
                    })
                })
                .flatten()
        };

        let signatures: Vec<SignatureEntry> = {
            let _s = obs::span("serve.index.compile_signatures");
            db.security_patches()
                .flat_map(|r| {
                    signatures_of(&r.patch).into_iter().map(|signature| SignatureEntry {
                        commit: r.commit,
                        cve_id: r.cve_id.clone(),
                        signature,
                    })
                })
                .collect()
        };

        ServeIndex { db, weights, forest, signatures }
    }

    /// Reassembles an index from already-built parts — the snapshot
    /// loader and the shard splitter, which must never re-run the
    /// learning pipeline.
    pub(crate) fn from_parts(
        db: PatchDb,
        weights: Weights,
        forest: Option<RandomForest>,
        signatures: Vec<SignatureEntry>,
    ) -> ServeIndex {
        ServeIndex { db, weights, forest, signatures }
    }

    /// Read access to every built part, for the snapshot encoder and
    /// the shard splitter.
    pub(crate) fn parts(
        &self,
    ) -> (&PatchDb, &Weights, Option<&RandomForest>, &[SignatureEntry]) {
        (&self.db, &self.weights, self.forest.as_ref(), &self.signatures)
    }

    /// Consumes the index into its parts (the shard splitter moves the
    /// dataset instead of cloning it).
    pub(crate) fn into_parts(
        self,
    ) -> (PatchDb, Weights, Option<RandomForest>, Vec<SignatureEntry>) {
        (self.db, self.weights, self.forest, self.signatures)
    }

    /// Persists the built index as a `patchdb-snapshot/v1` file; a
    /// server booted from it answers byte-identically to this one.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        Snapshot::encode(self).write_to(path)
    }

    /// Loads an index from a `patchdb-snapshot/v1` file without running
    /// any of the learning pipeline.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read; [`Error::Schema`]
    /// when it is not a well-formed snapshot (wrong magic or version,
    /// truncated, or failing its checksum).
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<ServeIndex, Error> {
        Snapshot::read_from(path)?.decode()
    }

    /// The indexed dataset.
    pub fn db(&self) -> &PatchDb {
        &self.db
    }

    /// Number of precompiled signatures.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// The weighted feature row the identifier scores — the request-time
    /// half of the Section III-B-2 weighting scheme.
    pub fn weighted_features(&self, patch: &Patch) -> Vec<f64> {
        apply_weights(&extract(patch, None), &self.weights).as_slice().to_vec()
    }

    /// Scores a batch of weighted feature rows with the pre-fit forest,
    /// in row order. Row-order deterministic, so scores are independent
    /// of how requests were batched together.
    pub fn score_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        match &self.forest {
            Some(f) => f.predict_proba_batch(rows),
            None => vec![0.5; rows.len()],
        }
    }

    /// Tests a target source text against every precompiled vulnerability
    /// signature.
    pub fn scan(&self, target: &str) -> ScanOutcome {
        let mut outcome = ScanOutcome::default();
        for entry in &self.signatures {
            match test_presence(&entry.signature, target) {
                PresenceVerdict::Vulnerable => outcome.matches.push(ScanMatch {
                    commit: entry.commit,
                    cve_id: entry.cve_id.clone(),
                }),
                PresenceVerdict::Patched => outcome.patched += 1,
                PresenceVerdict::NotApplicable => {}
            }
        }
        obs::counter_add("serve.scan.signatures_tested", self.signatures.len() as u64);
        obs::counter_add("serve.scan.matches", outcome.matches.len() as u64);
        outcome
    }

    /// The raw, additive statistics behind `/v1/stats`. Counts over
    /// disjoint record subsets sum, so N shards' parts merged with
    /// [`StatsParts::merge`] and rendered once are byte-identical to the
    /// unsharded document — the normalizing division happens exactly
    /// once, on identical integers.
    pub(crate) fn stats_parts(&self) -> StatsParts {
        let (category_counts, labeled) =
            PatchDb::category_counts(self.db.security_patches());
        StatsParts {
            stats: self.db.stats(),
            signatures: self.signatures.len(),
            category_counts,
            labeled,
        }
    }

    /// The `/v1/stats` document: headline counts, signature count, and
    /// the ground-truth category distribution in Table V order.
    pub fn stats_json(&self) -> Json {
        self.stats_parts().render()
    }

    /// Prefix lookup returning the match count alongside the rendered
    /// record (of the first match). The caller decides uniqueness —
    /// a sharded index sums counts across shards before trusting any
    /// single shard's "unique" hit.
    pub(crate) fn patch_lookup(&self, id: &str) -> (usize, Option<Json>) {
        let (hits, first) = self.db.find_patch_counted(id);
        (hits, first.map(render_patch))
    }

    /// The `/v1/patch/<id>` document, `None` when the id resolves to no
    /// unique record.
    pub fn patch_json(&self, id: &str) -> Option<Json> {
        match self.patch_lookup(id) {
            (1, json) => json,
            _ => None,
        }
    }

    /// The `/v1/classify` document for one parsed patch.
    pub fn classify_json(&self, patch: &Patch) -> Json {
        let category = classify_patch(patch);
        Json::Obj(vec![
            ("type_id".into(), Json::Num(category.type_id() as f64)),
            ("label".into(), Json::Str(category.label().to_owned())),
        ])
    }
}

/// Additive `/v1/stats` statistics: headline counts, signature count,
/// and *raw* category counts (normalization is deferred to rendering so
/// shard merges stay exact).
#[derive(Debug, Clone)]
pub(crate) struct StatsParts {
    pub(crate) stats: DatasetStats,
    pub(crate) signatures: usize,
    pub(crate) category_counts: HashMap<PatchCategory, usize>,
    pub(crate) labeled: usize,
}

impl StatsParts {
    /// Folds another shard's parts into this one (disjoint subsets, so
    /// every field adds).
    pub(crate) fn merge(&mut self, other: &StatsParts) {
        self.stats.nvd_security += other.stats.nvd_security;
        self.stats.wild_security += other.stats.wild_security;
        self.stats.non_security += other.stats.non_security;
        self.stats.synthetic_security += other.stats.synthetic_security;
        self.stats.synthetic_non_security += other.stats.synthetic_non_security;
        self.signatures += other.signatures;
        for (c, n) in &other.category_counts {
            *self.category_counts.entry(*c).or_insert(0) += n;
        }
        self.labeled += other.labeled;
    }

    /// Renders the `/v1/stats` document — the single code path both the
    /// unsharded and the merged sharded answers go through.
    pub(crate) fn render(&self) -> Json {
        let s = &self.stats;
        let total = self.labeled.max(1) as f64;
        let categories = ALL_CATEGORIES
            .into_iter()
            .map(|c| {
                let n = self.category_counts.get(&c).copied().unwrap_or(0);
                (c.label().to_owned(), Json::Num(n as f64 / total))
            })
            .collect();
        Json::Obj(vec![
            ("nvd_security".into(), Json::Num(s.nvd_security as f64)),
            ("wild_security".into(), Json::Num(s.wild_security as f64)),
            ("non_security".into(), Json::Num(s.non_security as f64)),
            ("synthetic_security".into(), Json::Num(s.synthetic_security as f64)),
            (
                "synthetic_non_security".into(),
                Json::Num(s.synthetic_non_security as f64),
            ),
            ("signatures".into(), Json::Num(self.signatures as f64)),
            ("categories".into(), Json::Obj(categories)),
        ])
    }
}

/// The `/v1/patch/<id>` record document — one renderer shared by the
/// unsharded and sharded lookup paths.
fn render_patch(r: &patchdb::PatchRecord) -> Json {
    let source = match r.source {
        Source::Nvd => "nvd",
        Source::Wild => "wild",
        Source::NonSecurity => "non-security",
    };
    Json::Obj(vec![
        ("commit".into(), Json::Str(r.commit.to_string())),
        ("repo".into(), Json::Str(r.repo.clone())),
        (
            "cve_id".into(),
            r.cve_id.as_ref().map_or(Json::Null, |c| Json::Str(c.clone())),
        ),
        ("source".into(), Json::Str(source.into())),
        ("message".into(), Json::Str(r.message.clone())),
        (
            "category".into(),
            r.truth_category
                .map_or(Json::Null, |c| Json::Str(c.label().to_owned())),
        ),
        ("patch".into(), Json::Str(r.patch.to_unified_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb::BuildOptions;
    use std::sync::OnceLock;

    fn index() -> &'static ServeIndex {
        static INDEX: OnceLock<ServeIndex> = OnceLock::new();
        INDEX.get_or_init(|| {
            ServeIndex::build(PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db)
        })
    }

    #[test]
    fn scores_separate_the_training_classes_on_average() {
        let ix = index();
        let sec_rows: Vec<Vec<f64>> = ix
            .db()
            .security_patches()
            .map(|r| ix.weighted_features(&r.patch))
            .collect();
        let nonsec_rows: Vec<Vec<f64>> = ix
            .db()
            .non_security
            .iter()
            .map(|r| ix.weighted_features(&r.patch))
            .collect();
        let mean = |rows: &[Vec<f64>]| {
            let s: f64 = ix.score_rows(rows).iter().sum();
            s / rows.len().max(1) as f64
        };
        let (sec, nonsec) = (mean(&sec_rows), mean(&nonsec_rows));
        assert!(
            sec > nonsec + 0.2,
            "identifier does not separate classes: sec {sec:.3} vs nonsec {nonsec:.3}"
        );
    }

    #[test]
    fn scan_flags_a_vulnerable_clone_of_an_indexed_patch() {
        let ix = index();
        // Reconstruct a pre-patch body from some indexed signature by
        // scanning each record's own BEFORE content: a record's own
        // vulnerable text must match its own signature.
        let mut hits = 0;
        for r in ix.db().security_patches().take(50) {
            let before: String = r
                .patch
                .hunks()
                .flat_map(|h| {
                    h.lines.iter().filter(|l| l.kind != patch_core::LineKind::Added)
                })
                .map(|l| l.content.clone() + "\n")
                .collect();
            hits += usize::from(!ix.scan(&before).matches.is_empty());
        }
        assert!(hits > 0, "no record's own pre-patch body matched its signature");
    }

    #[test]
    fn stats_json_counts_match_the_dataset() {
        let ix = index();
        let json = ix.stats_json();
        let stats = ix.db().stats();
        assert_eq!(
            json.get("nvd_security").and_then(Json::as_f64),
            Some(stats.nvd_security as f64)
        );
        assert_eq!(
            json.get("signatures").and_then(Json::as_f64),
            Some(ix.signature_count() as f64)
        );
        assert!(ix.signature_count() > 0);
    }

    #[test]
    fn patch_lookup_round_trips_by_prefix() {
        let ix = index();
        let first = ix.db().nvd.first().expect("tiny build has NVD records");
        let hex = first.commit.to_string();
        let json = ix.patch_json(&hex[..12]).expect("unique 12-char prefix resolves");
        assert_eq!(json.get("commit").and_then(Json::as_str), Some(hex.as_str()));
        assert!(ix.patch_json("zz").is_none());
    }

    #[test]
    fn one_class_dataset_scores_uninformative() {
        let db = PatchDb::default();
        let ix = ServeIndex::build(db);
        assert_eq!(ix.score_rows(&[vec![0.0; 60]]), vec![0.5]);
    }
}
