//! Content-addressed result cache for `/v1/identify`.
//!
//! Identify is a pure function of the request body: the same diff bytes
//! always parse to the same patch, extract the same feature row, and
//! score identically through the fitted forest (batch composition never
//! leaks into scores — pinned by `batch::tests`). That purity makes the
//! response cacheable by construction: a hit returns byte-identical
//! output to the full pipeline, so the cache is a throughput lever with
//! no observable effect besides latency.
//!
//! The cache is keyed by a 64-bit hash of the raw body; every hit
//! verifies full byte equality against the stored body, so a hash
//! collision degrades to a miss instead of serving a wrong score.
//! Capacity is bounded twice — entry count and total stored body bytes —
//! and the whole map is flushed when either bound is hit: flush-on-full
//! keeps the structure trivially deterministic (no recency bookkeeping)
//! and refills within one pass over a hot working set.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Mutex;

use patchdb_rt::obs;

/// Default entry cap: tiny relative to serve memory, far above any hot
/// request working set.
const MAX_ENTRIES: usize = 4096;
/// Default byte cap on stored bodies (bodies can be up to the HTTP
/// layer's 4 MB body limit each).
const MAX_BYTES: usize = 64 * 1024 * 1024;

/// The 64-bit content key for a request body.
pub(crate) fn cache_key(body: &[u8]) -> u64 {
    let mut hasher = DefaultHasher::new();
    hasher.write(body);
    hasher.finish()
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Vec<(Vec<u8>, f64)>>,
    entries: usize,
    bytes: usize,
}

/// Bounded body-bytes → score map shared by the workers (lookup) and
/// the batcher (insert after scoring).
pub(crate) struct IdentifyCache {
    inner: Mutex<Inner>,
    max_entries: usize,
    max_bytes: usize,
}

impl IdentifyCache {
    pub(crate) fn new() -> IdentifyCache {
        IdentifyCache::with_caps(MAX_ENTRIES, MAX_BYTES)
    }

    pub(crate) fn with_caps(max_entries: usize, max_bytes: usize) -> IdentifyCache {
        IdentifyCache {
            inner: Mutex::new(Inner::default()),
            max_entries,
            max_bytes,
        }
    }

    /// The cached score for `body`, if present. `key` must be
    /// `cache_key(body)`; callers pass it in so one hash serves both the
    /// lookup and a later insert.
    pub(crate) fn lookup(&self, key: u64, body: &[u8]) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .get(&key)?
            .iter()
            .find(|(stored, _)| stored == body)
            .map(|&(_, score)| score)
    }

    /// Stores one scored body. Duplicate inserts (two in-flight misses
    /// for the same body) are collapsed; hitting either capacity bound
    /// flushes the whole map first.
    pub(crate) fn insert(&self, key: u64, body: Vec<u8>, score: f64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(bucket) = inner.map.get(&key) {
            if bucket.iter().any(|(stored, _)| stored == &body) {
                return;
            }
        }
        if inner.entries >= self.max_entries
            || inner.bytes.saturating_add(body.len()) > self.max_bytes
        {
            inner.map.clear();
            inner.entries = 0;
            inner.bytes = 0;
            obs::counter_add("serve.identify.cache_flushes", 1);
        }
        inner.entries += 1;
        inner.bytes += body.len();
        inner.map.entry(key).or_default().push((body, score));
        obs::gauge_set("serve.identify.cache_entries", inner.entries as i64);
        obs::gauge_set("serve.identify.cache_bytes", inner.bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_what_insert_stored() {
        let cache = IdentifyCache::new();
        let body = b"diff --git a/x b/x".to_vec();
        let key = cache_key(&body);
        assert_eq!(cache.lookup(key, &body), None);
        cache.insert(key, body.clone(), 0.75);
        assert_eq!(cache.lookup(key, &body), Some(0.75));
    }

    #[test]
    fn colliding_key_with_different_bytes_is_a_miss_not_a_wrong_score() {
        let cache = IdentifyCache::new();
        let a = b"body a".to_vec();
        let key = cache_key(&a);
        cache.insert(key, a, 0.25);
        // Same key, different bytes: the equality check must refuse it.
        assert_eq!(cache.lookup(key, b"body b"), None);
        cache.insert(key, b"body b".to_vec(), 0.5);
        assert_eq!(cache.lookup(key, b"body b"), Some(0.5));
        assert_eq!(cache.lookup(key, b"body a"), Some(0.25));
    }

    #[test]
    fn duplicate_inserts_collapse() {
        let cache = IdentifyCache::with_caps(4, 1024);
        let body = b"same".to_vec();
        let key = cache_key(&body);
        for _ in 0..10 {
            cache.insert(key, body.clone(), 0.9);
        }
        assert_eq!(cache.inner.lock().unwrap().entries, 1);
    }

    #[test]
    fn entry_cap_flushes_and_refills() {
        let cache = IdentifyCache::with_caps(2, 1 << 20);
        for i in 0..3u8 {
            let body = vec![i; 4];
            cache.insert(cache_key(&body), body, f64::from(i));
        }
        // The third insert flushed the first two.
        let third = vec![2u8; 4];
        assert_eq!(cache.lookup(cache_key(&third), &third), Some(2.0));
        let first = vec![0u8; 4];
        assert_eq!(cache.lookup(cache_key(&first), &first), None);
        assert_eq!(cache.inner.lock().unwrap().entries, 1);
    }

    #[test]
    fn byte_cap_flushes_before_overflow() {
        let cache = IdentifyCache::with_caps(1024, 10);
        let big = vec![7u8; 8];
        cache.insert(cache_key(&big), big.clone(), 0.1);
        let more = vec![9u8; 8];
        cache.insert(cache_key(&more), more.clone(), 0.2);
        assert_eq!(cache.lookup(cache_key(&big), &big), None, "flushed");
        assert_eq!(cache.lookup(cache_key(&more), &more), Some(0.2));
        assert!(cache.inner.lock().unwrap().bytes <= 10);
    }
}
