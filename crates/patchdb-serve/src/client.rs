//! A minimal loopback HTTP/1.1 client — just enough to exercise the
//! server from tests, the CI smoke step, and the load-generating bench
//! without any external HTTP dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What came back from one [`request`]: the status code and the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Raw body bytes (everything after the header terminator).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The body as UTF-8, lossily.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response (the server closes the
/// connection after each exchange, so reading to EOF is the framing).
///
/// # Errors
///
/// Any socket error, or `InvalidData` when the response is not HTTP.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: patchdb\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |why: &str| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_owned())
    };
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| bad("non-UTF-8 response header"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    Ok(HttpReply { status, body: raw[header_end..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply_with_status_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\nlater\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.body_text(), "later\n");
    }

    #[test]
    fn rejects_non_http_noise() {
        assert!(parse_reply(b"banana").is_err());
        assert!(parse_reply(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
