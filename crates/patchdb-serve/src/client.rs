//! A minimal loopback HTTP/1.1 client — just enough to exercise the
//! server from tests, the CI smoke step, and the load-generating bench
//! without any external HTTP dependency.
//!
//! Two shapes:
//!
//! * [`request`] / [`request_timeout`] — one-shot: connect, send with
//!   `Connection: close`, read to EOF.
//! * [`Client`] — a persistent keep-alive connection. [`Client::send`]
//!   issues one request per call over the same socket;
//!   [`Client::pipeline`] writes a whole batch before reading any
//!   response, exercising the server's ordered-pipelining path.
//!   Responses are framed by `Content-Length` rather than EOF.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default read timeout for the one-shot [`request`] helper.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// What came back from one exchange: the status code and the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Raw body bytes (everything after the header terminator).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The body as UTF-8, lossily.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request on a fresh connection with a 30-second read
/// timeout. See [`request_timeout`] to pick the timeout.
///
/// # Errors
///
/// Any socket error, or `InvalidData` when the response is not HTTP.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<HttpReply> {
    request_timeout(addr, method, path, body, DEFAULT_TIMEOUT)
}

/// Sends one request on a fresh `Connection: close` connection and
/// reads the full response (the close is the framing), failing any
/// single read that stalls longer than `timeout`.
///
/// # Errors
///
/// Any socket error (including `WouldBlock`/`TimedOut` on a stalled
/// read), or `InvalidData` when the response is not HTTP.
pub fn request_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: patchdb\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// A persistent keep-alive connection to one server.
pub struct Client {
    stream: TcpStream,
    /// Bytes read past the end of the last parsed response (the start
    /// of the next one, under pipelining).
    buf: Vec<u8>,
}

impl Client {
    /// Connects and applies `timeout` to every subsequent read.
    ///
    /// # Errors
    ///
    /// Connection or socket-option errors.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, buf: Vec::new() })
    }

    /// Sends one request over the persistent connection and reads its
    /// response (framed by `Content-Length`).
    ///
    /// # Errors
    ///
    /// Socket errors, or `InvalidData` for a non-HTTP or unframed
    /// response. `UnexpectedEof` means the server closed the connection.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<HttpReply> {
        self.write_request(method, path, body)?;
        self.stream.flush()?;
        self.read_reply()
    }

    /// Sends one request marked `Connection: close` and reads its
    /// response; the server closes the connection after answering. This
    /// is the close-mode transport with connection setup kept out of the
    /// caller's request timer — connect via [`Client::connect`] first,
    /// then time only this call.
    ///
    /// # Errors
    ///
    /// As [`Client::send`].
    pub fn send_close(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<HttpReply> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: patchdb\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_reply()
    }

    /// Writes every request back-to-back, then reads every response, in
    /// order — the pipelined shape. Returns one reply per request.
    ///
    /// # Errors
    ///
    /// As [`Client::send`]; an error mid-batch loses the remainder.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, &[u8])],
    ) -> std::io::Result<Vec<HttpReply>> {
        for &(method, path, body) in requests {
            self.write_request(method, path, body)?;
        }
        self.stream.flush()?;
        requests.iter().map(|_| self.read_reply()).collect()
    }

    fn write_request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: patchdb\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)
    }

    /// Reads one `Content-Length`-framed response from the stream,
    /// keeping any over-read bytes for the next call.
    fn read_reply(&mut self) -> std::io::Result<HttpReply> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((reply, consumed)) = try_parse_framed(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(reply);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn bad(why: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_owned())
}

/// Parses one complete `Content-Length`-framed response from the front
/// of `raw`. Returns `None` when more bytes are needed.
fn try_parse_framed(raw: &[u8]) -> std::io::Result<Option<(HttpReply, usize)>> {
    let Some(header_end) = raw.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
    else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| bad("non-UTF-8 response header"))?;
    let status = parse_status(head)?;
    let mut content_length: Option<usize> = None;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    Some(value.trim().parse().map_err(|_| bad("bad Content-Length"))?);
            }
        }
    }
    let len = content_length.ok_or_else(|| bad("keep-alive response without Content-Length"))?;
    let total = header_end + len;
    if raw.len() < total {
        return Ok(None);
    }
    Ok(Some((HttpReply { status, body: raw[header_end..total].to_vec() }, total)))
}

fn parse_status(head: &str) -> std::io::Result<u16> {
    head.lines()
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| bad("non-UTF-8 response header"))?;
    let status = parse_status(head)?;
    Ok(HttpReply { status, body: raw[header_end..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply_with_status_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\nlater\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.body_text(), "later\n");
    }

    #[test]
    fn rejects_non_http_noise() {
        assert!(parse_reply(b"banana").is_err());
        assert!(parse_reply(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }

    #[test]
    fn framed_parse_waits_for_the_full_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel";
        assert!(try_parse_framed(raw).unwrap().is_none());
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        let (reply, consumed) = try_parse_framed(raw).unwrap().unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body_text(), "hello");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn framed_parse_leaves_the_next_pipelined_response_in_place() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokHTTP/1.1 404";
        let (reply, consumed) = try_parse_framed(raw).unwrap().unwrap();
        assert_eq!(reply.body_text(), "ok");
        assert_eq!(&raw[consumed..], b"HTTP/1.1 404");
    }

    #[test]
    fn framed_parse_requires_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\nbody";
        assert!(try_parse_framed(raw).is_err());
    }
}
