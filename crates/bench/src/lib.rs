//! Shared experiment scaffolding for the table/figure benches.
//!
//! Every paper experiment runs at a configurable fraction of the paper's
//! scale (whose 6M-commit corpus does not fit a laptop benchmark budget).
//! `PATCHDB_BENCH_SCALE` scales the corpus and pool sizes: `1.0` is the
//! default ≈1/20-of-paper scale used in EXPERIMENTS.md; smaller values
//! give faster smoke runs.

use patchdb::{BuildOptions, BuildReport, PatchDb, PatchRecord, PoolPlan};
use patchdb_corpus::CorpusConfig;
use patchdb_ml::Dataset;
use patchdb_nn::{encode_patch, patch_token_texts, TokenSequence, Vocabulary};

/// Reads the bench scale factor from `PATCHDB_BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("PATCHDB_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(1.0)
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(1.0) as usize
}

/// The benchmark-default build: a ~62K-commit forge (paper: 6M), Set I of
/// 10K with three rounds and Sets II/III of 20K with one round each
/// (paper: 100K/200K/200K), three-expert verification at 2% per-expert
/// error.
pub fn bench_options(seed: u64) -> BuildOptions {
    let s = bench_scale();
    BuildOptions::default_scale(seed)
        .corpus(CorpusConfig {
            n_repos: 313,
            mean_commits_per_repo: scaled(200, s),
            security_rate: 0.08,
            nvd_report_rate: 0.08,
            reported_mention_rate: 0.7,
            silent_mention_rate: 0.12,
            twin_rate: 0.25,
            seed,
        })
        .pools(vec![
            PoolPlan { name: "Set I".into(), size: scaled(10_000, s), rounds: 3 },
            PoolPlan { name: "Set II".into(), size: scaled(20_000, s), rounds: 1 },
            PoolPlan { name: "Set III".into(), size: scaled(20_000, s), rounds: 1 },
        ])
        .expert_error(0.02)
        .synthesize(false) // benches that need synthesis enable it
        .synth_cap(4)
}

/// Builds the benchmark experiment (forge + PatchDB) once.
pub fn build_experiment(seed: u64, synthesize: bool) -> BuildReport {
    PatchDb::build(&bench_options(seed).synthesize(synthesize))
}

/// Assembles a feature-space [`Dataset`] from positive/negative records.
pub fn features_dataset(pos: &[&PatchRecord], neg: &[&PatchRecord]) -> Dataset {
    let rows: Vec<Vec<f64>> = pos
        .iter()
        .chain(neg.iter())
        .map(|r| r.features.as_slice().to_vec())
        .collect();
    let labels: Vec<bool> = std::iter::repeat(true)
        .take(pos.len())
        .chain(std::iter::repeat(false).take(neg.len()))
        .collect();
    Dataset::new(rows, labels).expect("records have rectangular finite features")
}

/// Builds a token vocabulary over a set of patches.
pub fn build_vocab<'a, I>(patches: I, cap: usize) -> Vocabulary
where
    I: IntoIterator<Item = &'a patch_core::Patch>,
{
    let streams: Vec<Vec<String>> = patches.into_iter().map(patch_token_texts).collect();
    let refs: Vec<&[String]> = streams.iter().map(Vec::as_slice).collect();
    Vocabulary::build(refs.iter().copied(), cap)
}

/// Encodes records into RNN training pairs.
pub fn rnn_pairs(
    vocab: &Vocabulary,
    pos: &[&PatchRecord],
    neg: &[&PatchRecord],
) -> Vec<(TokenSequence, bool)> {
    pos.iter()
        .map(|r| (encode_patch(&r.patch, vocab), true))
        .chain(neg.iter().map(|r| (encode_patch(&r.patch, vocab), false)))
        .collect()
}

/// Deterministic split of record references into (train, test).
pub fn split_records<'a>(
    records: &[&'a PatchRecord],
    train_frac: f64,
    seed: u64,
) -> (Vec<&'a PatchRecord>, Vec<&'a PatchRecord>) {
    use patchdb_rt::rng::SliceRandom;
    let mut rng = patchdb_rt::rng::Xoshiro256pp::seed_from_u64(seed);
    let mut shuffled: Vec<&PatchRecord> = records.to_vec();
    shuffled.shuffle(&mut rng);
    let cut = ((shuffled.len() as f64) * train_frac).round() as usize;
    let test = shuffled.split_off(cut.min(shuffled.len()));
    (shuffled, test)
}

/// Prints a fixed-width table like the paper's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", out.trim_end());
    };
    line(headers.to_vec());
    line(widths.iter().map(|_| "-").collect());
    for r in rows {
        line(r.iter().map(String::as_str).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parses() {
        // Cannot mutate env safely in parallel tests; just check default.
        assert!(bench_scale() > 0.0);
    }

    #[test]
    fn options_scale_sanely() {
        let o = bench_options(1);
        assert_eq!(o.pools.len(), 3);
        assert!(o.corpus.expected_commits() > o.pools.iter().map(|p| p.size).sum::<usize>());
    }
}
