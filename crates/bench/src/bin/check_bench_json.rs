//! CI guard for the machine-readable report artifacts: a generic
//! validator that parses a report with `patchdb_rt::json`, dispatches on
//! its top-level `schema` tag, and schema-checks it.
//!
//! * `patchdb-bench-nls/v1` (BENCH_nls.json) — non-empty `results`
//!   array, each entry carrying `name`/`median_ns`.
//! * `patchdb-bench-nls/v2` — the v1 checks plus the `index` block: a
//!   non-empty `modes` array whose entries carry a string `mode`/`shape`
//!   and positive `build_median_ns`/`query_median_ns`/`speedup_vs_seed`,
//!   a positive `index_speedup_largest`, and at least one mode entry
//!   measured at the report's `xl_shape`.
//! * `patchdb-trace/v1` (TRACE_build.json) — spans nest (every node is
//!   an object with `name`/`ns`/`children`), durations are non-negative,
//!   counter names are unique with non-negative integer values, and each
//!   histogram's `count` equals the sum of its buckets.
//! * `patchdb-serve/v1` (BENCH_serve.json) — non-empty `results` array,
//!   each entry with a positive integer `workers`, non-negative
//!   `requests`/`errors`/`throughput_rps`, latency quantiles with
//!   `p50_ns <= p99_ns`, and (when present) server-side windowed
//!   quantiles with `server_p50_ns <= server_p99_ns`.
//! * `patchdb-serve/v2` — the v1 per-row checks plus a transport `mode`
//!   per row (`close` | `keepalive` | `pipelined`), a positive
//!   concurrent-connection count, and at least one `close` and one
//!   `keepalive` row so the keep-alive speedup is always computable.
//!   When the report carries a `lifecycle` block (snapshot boot vs
//!   pipeline boot, live swap quantiles), its timings must be positive,
//!   `swap_p50_ns <= swap_p99_ns`, and `traffic_errors` must be zero.
//! * `*.jsonl` access logs (`patchdb serve --access-log`) — dispatched
//!   on the file extension, not a schema tag: every line is a JSON
//!   object, `ts_ms` is non-decreasing in file order, request `id`s are
//!   unique, and each line's six stage durations sum to at most its
//!   `total_ns`. When a rotated sibling `<path>.1` exists (from
//!   `--access-log-max-mb`), its lines are prepended and the pair is
//!   validated as one stream — rotation must not break monotonicity or
//!   id uniqueness.
//! * `*.folded` profiles (`patchdb profile`, `/debug/profile`) — also
//!   extension-dispatched: non-empty, every line is `path count` with a
//!   `;`-joined non-empty frame path and a positive integer count.
//! * `*.snapshot` binary indexes (`patchdb snapshot`) — also
//!   extension-dispatched (the file is binary, never UTF-8): `PDBSNAP1`
//!   magic, the `patchdb-snapshot/v1` schema string, exactly four
//!   length-prefixed sections with a non-empty records section, no
//!   trailing garbage, and a valid trailing FNV-1a-64 checksum.
//! * `patchdb-profile/v1` (`GET /debug/profile`) — positive `hz`,
//!   non-negative `samples`, and a `folded` field passing the same
//!   folded-stacks line checks.
//! * `patchdb-trace-request/v1` (`GET /debug/trace/<id>`) — a string
//!   `trace_id` matching the embedded request record's `trace`, a
//!   boolean `supplied`, and a `request` object whose six stage
//!   durations are non-negative and sum to at most `total_ns`; when the
//!   record carries per-shard spans, each is non-negative and
//!   `shard_imbalance_ns` equals their max-minus-min spread.
//! * `patchdb-timeseries/v1` (`GET /debug/timeseries`) — a string
//!   `metric`, a positive `retention_s`, and a `points` array of
//!   `{s, v}` samples with strictly increasing second stamps, none of
//!   them in the future of `now_s`.
//! * `patchdb-slo/v1` (`GET /debug/slo`) — a non-empty `rules` array;
//!   each rule carries a `name`, a known `kind`, an `objective_pct` in
//!   (0, 100), a `budget_remaining_pct` in [0, 100], and per-window
//!   entries with positive `window_s`, non-negative good/bad counts,
//!   and a non-negative `burn_rate`.
//! * Chrome trace-event documents (`patchdb trace --perfetto`,
//!   `GET /debug/flight`) — dispatched on a top-level `traceEvents`
//!   array rather than a schema tag: every event carries
//!   `name`/`ph`/`ts`/`pid`/`tid`, and per tid the `B`/`E` events
//!   balance, nest, and carry non-decreasing timestamps — the document
//!   opens clean in Perfetto.
//!
//! A file without a `schema` tag falls back to the bench checks (the
//! pre-tag BENCH_nls.json format). Exits non-zero with a diagnostic on
//! any violation.

use std::process::ExitCode;

use patchdb_rt::json::Json;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check-bench-json <path>");
        return ExitCode::FAILURE;
    };
    // Binary snapshots dispatch on extension before any UTF-8 read.
    if path.ends_with(".snapshot") {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("check-bench-json: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check_snapshot(&bytes) {
            Ok(summary) => {
                println!("check-bench-json: {path} ok ({summary})");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("check-bench-json: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-bench-json: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if path.ends_with(".jsonl") {
        // A rotated sibling (`--access-log-max-mb`) holds the older
        // lines: validate the pair as the single stream it logically is.
        let rotated = std::fs::read_to_string(format!("{path}.1")).ok();
        let full = match &rotated {
            Some(older) => format!("{older}{text}"),
            None => text,
        };
        return match check_access_log(&full) {
            Ok(summary) => {
                let suffix = if rotated.is_some() { ", rotated pair" } else { "" };
                println!("check-bench-json: {path} ok ({summary}{suffix})");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("check-bench-json: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if path.ends_with(".folded") {
        return match check_folded(&text) {
            Ok(summary) => {
                println!("check-bench-json: {path} ok ({summary})");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("check-bench-json: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-bench-json: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    let outcome = match schema {
        "patchdb-trace/v1" => check_trace(&json),
        "patchdb-serve/v1" => check_serve(&json),
        "patchdb-serve/v2" => check_serve_v2(&json),
        "patchdb-profile/v1" => check_profile(&json),
        "patchdb-trace-request/v1" => check_trace_request(&json),
        "patchdb-timeseries/v1" => check_timeseries(&json),
        "patchdb-slo/v1" => check_slo(&json),
        // Chrome trace-event documents carry no schema tag; dispatch on
        // their defining member.
        "" if json.get("traceEvents").is_some() => check_trace_events(&json),
        "patchdb-bench-nls/v1" | "" => check_bench(&json),
        "patchdb-bench-nls/v2" => check_bench_v2(&json),
        other => Err(format!("unknown schema tag {other:?}")),
    };
    match outcome {
        Ok(summary) => {
            println!("check-bench-json: {path} ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check-bench-json: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A `patchdb-snapshot/v1` binary index (`patchdb snapshot`) —
/// extension-dispatched: leading `PDBSNAP1` magic, the embedded schema
/// string, exactly four length-prefixed sections with a non-empty
/// records section, no trailing garbage, and a valid FNV-1a-64
/// checksum over every preceding byte.
fn check_snapshot(bytes: &[u8]) -> Result<String, String> {
    const MAGIC: &[u8; 8] = b"PDBSNAP1";
    const SCHEMA: &str = "patchdb-snapshot/v1";
    if bytes.len() < MAGIC.len() + 8 {
        return Err(format!("{} bytes is too short for a snapshot", bytes.len()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in body {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if stored != hash {
        return Err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {hash:#018x}"
        ));
    }
    let mut at = 0usize;
    let mut take = |n: usize| -> Result<&[u8], String> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= body.len())
            .ok_or(format!("truncated: need {n} bytes at offset {at}"))?;
        let out = &body[at..end];
        at = end;
        Ok(out)
    };
    if take(MAGIC.len())? != MAGIC.as_slice() {
        return Err("bad magic (not a patchdb snapshot)".into());
    }
    let tag_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let tag = String::from_utf8_lossy(take(tag_len)?).into_owned();
    if tag != SCHEMA {
        return Err(format!("unsupported snapshot schema {tag:?}"));
    }
    let sections = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    if sections != 4 {
        return Err(format!("expected 4 sections, found {sections}"));
    }
    let mut section_lens = Vec::with_capacity(4);
    for i in 0..sections {
        let len = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let len = usize::try_from(len)
            .map_err(|_| format!("section #{i} length {len} overflows"))?;
        take(len).map_err(|e| format!("section #{i}: {e}"))?;
        section_lens.push(len);
    }
    if at != body.len() {
        return Err(format!("{} trailing bytes after the last section", body.len() - at));
    }
    if section_lens[0] == 0 {
        return Err("records section is empty".into());
    }
    Ok(format!(
        "{SCHEMA}, {} bytes, sections {:?}",
        bytes.len(),
        section_lens
    ))
}

fn check_bench(json: &Json) -> Result<String, String> {
    let results = json
        .get("results")
        .and_then(|r| r.as_arr())
        .ok_or("no `results` array")?;
    if results.is_empty() {
        return Err("empty `results` array".into());
    }
    for (i, r) in results.iter().enumerate() {
        if r.get("name").is_none() || r.get("median_ns").and_then(Json::as_f64).is_none() {
            return Err(format!("result #{i} lacks name/median_ns"));
        }
    }
    Ok(format!("{} results", results.len()))
}

/// The v2 bench report: everything v1 requires, plus the `index` block
/// recording the per-mode build/query medians and seed-relative query
/// speedups, including the XL size class.
fn check_bench_v2(json: &Json) -> Result<String, String> {
    let base = check_bench(json)?;
    let index = json.get("index").ok_or("no `index` object")?;
    let modes = index.get("modes").and_then(|m| m.as_arr()).ok_or("no `index.modes` array")?;
    if modes.is_empty() {
        return Err("empty `index.modes` array".into());
    }
    let xl_shape = index
        .get("xl_shape")
        .and_then(Json::as_str)
        .ok_or("`index` lacks a string `xl_shape`")?;
    let mut xl_entries = 0usize;
    for (i, m) in modes.iter().enumerate() {
        let at = format!("index.modes[{i}]");
        for field in ["mode", "shape"] {
            if m.get(field).and_then(Json::as_str).is_none() {
                return Err(format!("{at} lacks a string `{field}`"));
            }
        }
        for field in ["build_median_ns", "query_median_ns", "speedup_vs_seed"] {
            let v = m
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("{at} lacks a numeric `{field}`"))?;
            if !(v > 0.0) {
                return Err(format!("{at}: `{field}` = {v} is not positive"));
            }
        }
        if m.get("shape").and_then(Json::as_str) == Some(xl_shape) {
            xl_entries += 1;
        }
    }
    if xl_entries == 0 {
        return Err(format!("no `index.modes` entry measured at xl_shape {xl_shape:?}"));
    }
    let headline = index
        .get("index_speedup_largest")
        .and_then(Json::as_f64)
        .ok_or("`index` lacks a numeric `index_speedup_largest`")?;
    if !(headline > 0.0) {
        return Err(format!("`index_speedup_largest` = {headline} is not positive"));
    }
    Ok(format!(
        "{base}, {} index modes ({xl_entries} at xl {xl_shape}), best {headline:.1}x",
        modes.len()
    ))
}

fn check_serve(json: &Json) -> Result<String, String> {
    let results = json
        .get("results")
        .and_then(|r| r.as_arr())
        .ok_or("no `results` array")?;
    if results.is_empty() {
        return Err("empty `results` array".into());
    }
    for (i, r) in results.iter().enumerate() {
        let at = format!("result #{i}");
        let num = |field: &str| {
            r.get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("{at} lacks a numeric `{field}`"))
        };
        let workers = num("workers")?;
        if !(workers >= 1.0 && workers.fract() == 0.0) {
            return Err(format!("{at}: workers = {workers} is not a positive integer"));
        }
        for field in ["requests", "errors", "throughput_rps", "p50_ns", "p99_ns"] {
            if num(field)? < 0.0 {
                return Err(format!("{at}: `{field}` is negative"));
            }
        }
        if num("p50_ns")? > num("p99_ns")? {
            return Err(format!("{at}: p50_ns exceeds p99_ns"));
        }
        // Server-side windowed quantiles are newer than the schema tag;
        // validate them when a result carries them.
        if r.get("server_p50_ns").is_some() || r.get("server_p99_ns").is_some() {
            for field in ["server_p50_ns", "server_p99_ns"] {
                if num(field)? < 0.0 {
                    return Err(format!("{at}: `{field}` is negative"));
                }
            }
            if num("server_p50_ns")? > num("server_p99_ns")? {
                return Err(format!("{at}: server_p50_ns exceeds server_p99_ns"));
            }
        }
    }
    Ok(format!("{} serve configurations", results.len()))
}

/// The v2 serve report: every v1 per-row check, plus the transport mode
/// and connection count each row was driven with, and enough mode
/// coverage (≥1 `close`, ≥1 `keepalive` row) that the keep-alive
/// speedup the report exists to document is actually computable.
fn check_serve_v2(json: &Json) -> Result<String, String> {
    let base = check_serve(json)?;
    let results = json
        .get("results")
        .and_then(|r| r.as_arr())
        .ok_or("no `results` array")?;
    let mut close_rows = 0usize;
    let mut keepalive_rows = 0usize;
    for (i, r) in results.iter().enumerate() {
        let at = format!("result #{i}");
        let mode = r
            .get("mode")
            .and_then(Json::as_str)
            .ok_or(format!("{at} lacks a string `mode`"))?;
        match mode {
            "close" => close_rows += 1,
            "keepalive" => keepalive_rows += 1,
            "pipelined" => {}
            other => return Err(format!("{at}: unknown mode {other:?}")),
        }
        let connections = r
            .get("connections")
            .and_then(Json::as_f64)
            .ok_or(format!("{at} lacks a numeric `connections`"))?;
        if !(connections >= 1.0) {
            return Err(format!("{at}: connections = {connections} is not positive"));
        }
    }
    if close_rows == 0 || keepalive_rows == 0 {
        return Err(format!(
            "mode coverage too thin: {close_rows} close rows, {keepalive_rows} \
             keepalive rows (need >= 1 of each)"
        ));
    }
    // The lifecycle block is newer than the schema tag; validate it
    // when the report carries one.
    let mut suffix = String::new();
    if let Some(lifecycle) = json.get("lifecycle") {
        let num = |field: &str| {
            lifecycle
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("`lifecycle` lacks a numeric `{field}`"))
        };
        for field in ["boot_build_ns", "boot_snapshot_ns", "snapshot_bytes", "swaps"] {
            if !(num(field)? > 0.0) {
                return Err(format!("`lifecycle.{field}` is not positive"));
            }
        }
        if num("swap_p50_ns")? > num("swap_p99_ns")? {
            return Err("`lifecycle`: swap_p50_ns exceeds swap_p99_ns".into());
        }
        if num("traffic_errors")? != 0.0 {
            return Err("`lifecycle`: traffic_errors is not zero".into());
        }
        suffix = format!(", {} lifecycle swaps", num("swaps")?);
    }
    Ok(format!(
        "{base}, {close_rows} close + {keepalive_rows} keepalive rows{suffix}"
    ))
}

/// One access-log JSONL file: per-line JSON objects, monotonic `ts_ms`,
/// unique request `id`s, stage durations summing to at most `total_ns`.
fn check_access_log(text: &str) -> Result<String, String> {
    const STAGES: [&str; 6] =
        ["accept_ns", "queue_ns", "parse_ns", "batch_ns", "compute_ns", "write_ns"];
    let mut seen_ids = std::collections::HashSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let at = format!("line {}", i + 1);
        let json =
            Json::parse(line).map_err(|e| format!("{at}: not valid JSON: {e}"))?;
        let num = |field: &str| {
            json.get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("{at} lacks a numeric `{field}`"))
        };

        let ts = num("ts_ms")?;
        if ts < last_ts {
            return Err(format!("{at}: ts_ms {ts} regressed below {last_ts}"));
        }
        last_ts = ts;

        let id = num("id")?;
        if !(id >= 1.0 && id.fract() == 0.0) {
            return Err(format!("{at}: id {id} is not a positive integer"));
        }
        if !seen_ids.insert(id as u64) {
            return Err(format!("{at}: duplicate request id {id}"));
        }

        let total = num("total_ns")?;
        let mut stage_sum = 0.0;
        for stage in STAGES {
            let v = num(stage)?;
            if v < 0.0 {
                return Err(format!("{at}: `{stage}` is negative"));
            }
            stage_sum += v;
        }
        if stage_sum > total {
            return Err(format!(
                "{at}: stage durations sum to {stage_sum} > total_ns {total}"
            ));
        }
        for field in ["method", "path", "endpoint"] {
            if json.get(field).and_then(Json::as_str).is_none() {
                return Err(format!("{at} lacks a string `{field}`"));
            }
        }
    }
    if lines == 0 {
        return Err("empty access log".into());
    }
    Ok(format!("{lines} access-log lines"))
}

/// Folded-stacks text (flamegraph.pl input): non-empty, each line a
/// `;`-joined frame path followed by one space and a positive integer
/// sample count, with no empty frames.
fn check_folded(text: &str) -> Result<String, String> {
    let mut lines = 0usize;
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let at = format!("line {}", i + 1);
        let (path, count) =
            line.rsplit_once(' ').ok_or(format!("{at}: no `path count` separator"))?;
        if path.is_empty() || path.split(';').any(str::is_empty) {
            return Err(format!("{at}: empty frame in path {path:?}"));
        }
        let count: u64 = count
            .parse()
            .map_err(|_| format!("{at}: count {count:?} is not an integer"))?;
        if count == 0 {
            return Err(format!("{at}: zero sample count"));
        }
        samples += count;
    }
    if lines == 0 {
        return Err("empty folded-stacks file".into());
    }
    Ok(format!("{lines} stacks, {samples} samples"))
}

/// A `/debug/profile` document: run parameters plus embedded folded
/// stacks, which must pass the same line checks as a `.folded` file.
fn check_profile(json: &Json) -> Result<String, String> {
    let hz = json.get("hz").and_then(Json::as_f64).ok_or("no numeric `hz`")?;
    if !(hz >= 1.0) {
        return Err(format!("hz = {hz} is not positive"));
    }
    let samples = json.get("samples").and_then(Json::as_f64).ok_or("no numeric `samples`")?;
    if samples < 0.0 {
        return Err(format!("samples = {samples} is negative"));
    }
    let folded = json.get("folded").and_then(Json::as_str).ok_or("no string `folded`")?;
    let inner = check_folded(folded)?;
    if json.get("self_top").and_then(|t| t.as_arr()).is_none() {
        return Err("no `self_top` array".into());
    }
    Ok(format!("{hz} Hz, {inner}"))
}

/// A `/debug/trace/<id>` document: the trace id round-trips into the
/// embedded request record, the stage clocks stay within `total_ns`,
/// and any per-shard spans are coherent with the recorded imbalance.
fn check_trace_request(json: &Json) -> Result<String, String> {
    let trace_id =
        json.get("trace_id").and_then(Json::as_str).ok_or("no string `trace_id`")?;
    if !matches!(json.get("supplied"), Some(Json::Bool(_))) {
        return Err("no boolean `supplied`".into());
    }
    let request = json.get("request").ok_or("no `request` object")?;
    if request.get("trace").and_then(Json::as_str) != Some(trace_id) {
        return Err(format!(
            "request.trace does not round-trip trace_id {trace_id:?}"
        ));
    }
    let num = |field: &str| {
        request
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("`request` lacks a numeric `{field}`"))
    };
    let id = num("id")?;
    if !(id >= 1.0 && id.fract() == 0.0) {
        return Err(format!("request.id {id} is not a positive integer"));
    }
    num("generation")?;
    let total = num("total_ns")?;
    let mut stage_sum = 0.0;
    for stage in ["accept_ns", "queue_ns", "parse_ns", "batch_ns", "compute_ns", "write_ns"] {
        let v = num(stage)?;
        if v < 0.0 {
            return Err(format!("request.{stage} is negative"));
        }
        stage_sum += v;
    }
    if stage_sum > total {
        return Err(format!("stage durations sum to {stage_sum} > total_ns {total}"));
    }
    let mut summary = format!("trace {trace_id}, request {id}");
    if let Some(shards) = request.get("shards").and_then(|s| s.as_arr()) {
        let mut spans = Vec::with_capacity(shards.len());
        for (i, s) in shards.iter().enumerate() {
            let v = s.as_f64().ok_or(format!("shards[{i}] is not a number"))?;
            if v < 0.0 {
                return Err(format!("shards[{i}] = {v} is negative"));
            }
            spans.push(v);
        }
        let spread = spans.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - spans.iter().cloned().fold(f64::INFINITY, f64::min);
        let imbalance = num("shard_imbalance_ns")?;
        if imbalance != spread {
            return Err(format!(
                "shard_imbalance_ns {imbalance} != max-min spread {spread}"
            ));
        }
        summary.push_str(&format!(", {} shard spans", spans.len()));
    }
    Ok(summary)
}

/// A `/debug/timeseries` document: per-second samples in strictly
/// increasing order, none from the future.
fn check_timeseries(json: &Json) -> Result<String, String> {
    let metric = json.get("metric").and_then(Json::as_str).ok_or("no string `metric`")?;
    let retention =
        json.get("retention_s").and_then(Json::as_f64).ok_or("no numeric `retention_s`")?;
    if !(retention >= 1.0) {
        return Err(format!("retention_s = {retention} is not positive"));
    }
    let now_s = json.get("now_s").and_then(Json::as_f64).ok_or("no numeric `now_s`")?;
    let points = json.get("points").and_then(|p| p.as_arr()).ok_or("no `points` array")?;
    let mut last_s = f64::NEG_INFINITY;
    for (i, p) in points.iter().enumerate() {
        let at = format!("points[{i}]");
        let s = p.get("s").and_then(Json::as_f64).ok_or(format!("{at} lacks a numeric `s`"))?;
        if p.get("v").and_then(Json::as_f64).is_none() {
            return Err(format!("{at} lacks a numeric `v`"));
        }
        if s <= last_s {
            return Err(format!("{at}: second {s} does not increase past {last_s}"));
        }
        if s > now_s {
            return Err(format!("{at}: second {s} is in the future of now_s {now_s}"));
        }
        last_s = s;
    }
    Ok(format!("metric {metric}, {} points", points.len()))
}

/// A `/debug/slo` document: every rule's objective, burn rates, and
/// remaining error budget are within their defined ranges.
fn check_slo(json: &Json) -> Result<String, String> {
    if json.get("now_s").and_then(Json::as_f64).is_none() {
        return Err("no numeric `now_s`".into());
    }
    let rules = json.get("rules").and_then(|r| r.as_arr()).ok_or("no `rules` array")?;
    if rules.is_empty() {
        return Err("empty `rules` array".into());
    }
    let mut windows = 0usize;
    for (i, rule) in rules.iter().enumerate() {
        let at = format!("rules[{i}]");
        if rule.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("{at} lacks a string `name`"));
        }
        match rule.get("kind").and_then(Json::as_str) {
            Some("latency" | "availability") => {}
            other => return Err(format!("{at}: unknown kind {other:?}")),
        }
        let objective = rule
            .get("objective_pct")
            .and_then(Json::as_f64)
            .ok_or(format!("{at} lacks a numeric `objective_pct`"))?;
        if !(objective > 0.0 && objective < 100.0) {
            return Err(format!("{at}: objective_pct {objective} outside (0, 100)"));
        }
        let budget = rule
            .get("budget_remaining_pct")
            .and_then(Json::as_f64)
            .ok_or(format!("{at} lacks a numeric `budget_remaining_pct`"))?;
        if !(0.0..=100.0).contains(&budget) {
            return Err(format!("{at}: budget_remaining_pct {budget} outside [0, 100]"));
        }
        let entries =
            rule.get("windows").and_then(|w| w.as_arr()).ok_or(format!("{at} lacks `windows`"))?;
        if entries.is_empty() {
            return Err(format!("{at}: empty `windows` array"));
        }
        for (j, w) in entries.iter().enumerate() {
            let wat = format!("{at}.windows[{j}]");
            let num = |field: &str| {
                w.get(field)
                    .and_then(Json::as_f64)
                    .ok_or(format!("{wat} lacks a numeric `{field}`"))
            };
            if !(num("window_s")? >= 1.0) {
                return Err(format!("{wat}: window_s is not positive"));
            }
            for field in ["good", "bad", "burn_rate"] {
                if num(field)? < 0.0 {
                    return Err(format!("{wat}: `{field}` is negative"));
                }
            }
            windows += 1;
        }
    }
    Ok(format!("{} rules, {windows} windows", rules.len()))
}

/// A Chrome trace-event document: every event carries the required
/// fields, and per tid the duration events balance (`B`/`E` nest by
/// name, none unclosed) with non-decreasing timestamps — exactly what
/// Perfetto needs to open the file without complaint.
fn check_trace_events(json: &Json) -> Result<String, String> {
    let events =
        json.get("traceEvents").and_then(|e| e.as_arr()).ok_or("no `traceEvents` array")?;
    if events.is_empty() {
        return Err("empty `traceEvents` array".into());
    }
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    let mut pairs = 0usize;
    for (i, e) in events.iter().enumerate() {
        let at = format!("traceEvents[{i}]");
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("{at} lacks a string `name`"))?;
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or(format!("{at} lacks a string `ph`"))?;
        let ts =
            e.get("ts").and_then(Json::as_f64).ok_or(format!("{at} lacks a numeric `ts`"))?;
        if e.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("{at} lacks a numeric `pid`"));
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("{at} lacks a numeric `tid`"))? as u64;
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!("{at}: ts {ts} regressed below {prev} on tid {tid}"));
        }
        *prev = ts;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_owned()),
            "E" => {
                let popped = stacks.entry(tid).or_default().pop();
                if popped.as_deref() != Some(name) {
                    return Err(format!(
                        "{at}: E {name:?} does not close the open B {popped:?} on tid {tid}"
                    ));
                }
                pairs += 1;
            }
            "X" | "C" | "M" | "i" => {}
            other => return Err(format!("{at}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid} ends with unclosed B events: {stack:?}"));
        }
    }
    Ok(format!("{} events, {pairs} B/E pairs over {} threads", events.len(), last_ts.len()))
}

fn check_trace(json: &Json) -> Result<String, String> {
    let spans = json.get("spans").and_then(|s| s.as_arr()).ok_or("no `spans` array")?;
    if spans.is_empty() {
        return Err("empty `spans` array".into());
    }
    let mut span_count = 0usize;
    for (i, s) in spans.iter().enumerate() {
        check_span(s, &format!("spans[{i}]"), &mut span_count)?;
    }

    let Some(Json::Obj(counters)) = json.get("counters") else {
        return Err("no `counters` object".into());
    };
    let mut seen = std::collections::HashSet::new();
    for (name, value) in counters {
        if !seen.insert(name.as_str()) {
            return Err(format!("duplicate counter name {name:?}"));
        }
        let v = value.as_f64().ok_or(format!("counter {name:?} is not a number"))?;
        if !(v >= 0.0 && v.fract() == 0.0) {
            return Err(format!("counter {name:?} = {v} is not a non-negative integer"));
        }
    }

    let Some(Json::Obj(hists)) = json.get("histograms") else {
        return Err("no `histograms` object".into());
    };
    for (name, h) in hists {
        let count = h.get("count").and_then(Json::as_f64);
        let buckets = h.get("buckets").and_then(|b| b.as_arr());
        let (Some(count), Some(buckets)) = (count, buckets) else {
            return Err(format!("histogram {name:?} lacks count/buckets"));
        };
        let mut total = 0.0;
        for b in buckets {
            let v = b.as_f64().ok_or(format!("histogram {name:?} has a non-numeric bucket"))?;
            if v < 0.0 {
                return Err(format!("histogram {name:?} has a negative bucket"));
            }
            total += v;
        }
        if total != count {
            return Err(format!("histogram {name:?}: bucket sum {total} != count {count}"));
        }
    }

    Ok(format!("{span_count} spans, {} counters, {} histograms", counters.len(), hists.len()))
}

/// One span node: `name` string, non-negative `ns`, `children` array of
/// span nodes — the recursion itself verifies the tree nests.
fn check_span(s: &Json, at: &str, span_count: &mut usize) -> Result<(), String> {
    *span_count += 1;
    if s.get("name").and_then(Json::as_str).is_none() {
        return Err(format!("{at} lacks a string `name`"));
    }
    let ns = s.get("ns").and_then(Json::as_f64).ok_or(format!("{at} lacks a numeric `ns`"))?;
    if ns < 0.0 {
        return Err(format!("{at} has negative duration {ns}"));
    }
    let children =
        s.get("children").and_then(|c| c.as_arr()).ok_or(format!("{at} lacks `children`"))?;
    for (i, c) in children.iter().enumerate() {
        check_span(c, &format!("{at}.children[{i}]"), span_count)?;
    }
    Ok(())
}
