//! CI guard for the perf-trajectory artifacts: asserts a bench JSON file
//! (e.g. `BENCH_nls.json`) parses with `patchdb_rt::json` and carries a
//! non-empty `results` array. Exits non-zero with a diagnostic otherwise.

use std::process::ExitCode;

use patchdb_rt::json::Json;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check-bench-json <path>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-bench-json: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check-bench-json: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(results) = json.get("results").and_then(|r| r.as_arr()) else {
        eprintln!("check-bench-json: {path} has no `results` array");
        return ExitCode::FAILURE;
    };
    if results.is_empty() {
        eprintln!("check-bench-json: {path} has an empty `results` array");
        return ExitCode::FAILURE;
    }
    for (i, r) in results.iter().enumerate() {
        if r.get("name").is_none() || r.get("median_ns").and_then(Json::as_f64).is_none() {
            eprintln!("check-bench-json: {path} result #{i} lacks name/median_ns");
            return ExitCode::FAILURE;
        }
    }
    println!("check-bench-json: {path} ok ({} results)", results.len());
    ExitCode::SUCCESS
}
