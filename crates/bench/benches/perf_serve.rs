//! Loopback load generation against `patchdb-serve`: boots a server over
//! a tiny built dataset at several worker-pool sizes and hammers
//! `/v1/identify` from concurrent client threads in three transport
//! modes — one connection per request (`close`), a persistent connection
//! per client (`keepalive`), and deep request pipelining (`pipelined`) —
//! reporting throughput and client-side latency quantiles per
//! configuration, written to `BENCH_serve.json` (schema
//! `patchdb-serve/v2`) at the repo root.
//!
//! Every response body is checked against a reference reply computed
//! once from a single-worker server: transport mode, worker count, and
//! batch composition must never change bytes.
//!
//! For the non-pipelined modes each configuration also scrapes the
//! server's own `/metrics` windowed quantiles (`serve.identify.total_ns`,
//! 60 s window) and cross-checks them against the exact client-side
//! quantiles: the server buckets into log2 histograms, so the two must
//! land within one bucket edge of each other — a live end-to-end check
//! that the telemetry pipeline measures the same reality the client
//! observes. (Under pipelining the client can only time whole batches,
//! so the per-request comparison is skipped.)
//!
//! After the worker/mode matrix, three observability pricing rows rerun
//! the 8-worker keep-alive point with the flight recorder on, with
//! span mirroring on under a live 97 Hz background sampler, and with
//! request tracing on (per-request trace records, SLO accounting, and
//! the per-second time-series sampler; the matrix itself runs with all
//! three off). Each toggle is flipped live on one
//! server across adjacent short off/on drive pairs, and the reported
//! overhead is the median of the per-pair throughput ratios — adjacent
//! pairs cancel machine drift, the median discards load bursts — with
//! the introspection runtime's acceptance bar at <= 5%.
//!
//! A final lifecycle section times booting from a binary snapshot
//! against rerunning the build pipeline, then drives live
//! `/admin/reload` copy-on-write swaps under keep-alive traffic —
//! reporting the reload round-trip quantiles and requiring zero failed
//! (and byte-identical) requests across every swap.
//!
//! * `PATCHDB_BENCH_FAST=1` shrinks the request count for the CI smoke
//!   run (the JSON is still produced and must still parse).
//! * `PATCHDB_BENCH_SERVE_JSON=<path>` overrides the output location.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use patchdb::{BuildOptions, PatchDb};
use patchdb_rt::json::Json;
use patchdb_rt::obs;
use patchdb_serve::client::{self, Client};
use patchdb_serve::{ReloadSource, ServeConfig, ServeIndex, Server};

const CLIENT_THREADS: usize = 8;
/// Requests written back-to-back per batch in pipelined mode (the
/// server's read backpressure engages at 128).
const PIPELINE_DEPTH: usize = 64;
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn fast_mode() -> bool {
    std::env::var_os("PATCHDB_BENCH_FAST").is_some()
}

/// What one drive produced: wall-clock seconds, sorted per-request
/// latencies (per-batch in pipelined mode), error count, and how many
/// TCP connections the clients opened.
struct Outcome {
    elapsed: f64,
    latencies: Vec<u64>,
    ok: usize,
    errors: usize,
    connections: usize,
}

fn finish(
    started: Instant,
    outcomes: Vec<(Vec<u64>, usize, usize, usize)>,
) -> Outcome {
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let (mut ok, mut errors, mut connections) = (0, 0, 0);
    for (l, o, e, c) in outcomes {
        latencies.extend(l);
        ok += o;
        errors += e;
        connections += c;
    }
    latencies.sort_unstable();
    Outcome { elapsed, latencies, ok, errors, connections }
}

/// `close` mode: every request opens its own connection — the v1
/// protocol and the baseline the keep-alive speedup is measured against.
fn drive_close(
    addr: SocketAddr,
    bodies: &[String],
    expected: &[Vec<u8>],
    total: usize,
) -> Outcome {
    let started = Instant::now();
    let per_thread = total.div_ceil(CLIENT_THREADS);
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut errors = 0usize;
                    for i in 0..per_thread {
                        let which = (t * per_thread + i) % bodies.len();
                        // Connect outside the request timer: the server's
                        // request clock starts at accept, so client-side
                        // connection setup would skew the drift check.
                        let Ok(mut conn) = Client::connect(addr, CLIENT_TIMEOUT) else {
                            errors += 1;
                            continue;
                        };
                        let sent = Instant::now();
                        match conn.send_close(
                            "POST",
                            "/v1/identify",
                            bodies[which].as_bytes(),
                        ) {
                            Ok(reply) if reply.status == 200 => {
                                assert_eq!(
                                    reply.body, expected[which],
                                    "close-mode reply diverged from reference"
                                );
                                latencies.push(sent.elapsed().as_nanos() as u64);
                            }
                            _ => errors += 1,
                        }
                    }
                    let ok = latencies.len();
                    (latencies, ok, errors, per_thread)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    finish(started, outcomes)
}

/// `keepalive` mode: one persistent connection per client thread,
/// reconnecting only on error.
fn drive_keepalive(
    addr: SocketAddr,
    bodies: &[String],
    expected: &[Vec<u8>],
    total: usize,
) -> Outcome {
    let started = Instant::now();
    let per_thread = total.div_ceil(CLIENT_THREADS);
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut errors = 0usize;
                    let mut connections = 0usize;
                    let mut conn: Option<Client> = None;
                    for i in 0..per_thread {
                        let which = (t * per_thread + i) % bodies.len();
                        let ka = match conn.as_mut() {
                            Some(ka) => ka,
                            None => match Client::connect(addr, CLIENT_TIMEOUT) {
                                Ok(ka) => {
                                    connections += 1;
                                    conn.insert(ka)
                                }
                                Err(_) => {
                                    errors += 1;
                                    continue;
                                }
                            },
                        };
                        let sent = Instant::now();
                        match ka.send("POST", "/v1/identify", bodies[which].as_bytes()) {
                            Ok(reply) if reply.status == 200 => {
                                assert_eq!(
                                    reply.body, expected[which],
                                    "keep-alive reply diverged from reference"
                                );
                                latencies.push(sent.elapsed().as_nanos() as u64);
                            }
                            _ => {
                                errors += 1;
                                conn = None; // reconnect next iteration
                            }
                        }
                    }
                    let ok = latencies.len();
                    (latencies, ok, errors, connections)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    finish(started, outcomes)
}

/// `pipelined` mode: one persistent connection per client thread,
/// [`PIPELINE_DEPTH`] requests written before any response is read.
/// Latencies are per *batch* (the client cannot time individual
/// responses it has not asked for yet).
fn drive_pipelined(
    addr: SocketAddr,
    bodies: &[String],
    expected: &[Vec<u8>],
    total: usize,
) -> Outcome {
    let started = Instant::now();
    let per_thread = total.div_ceil(CLIENT_THREADS);
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut ok = 0usize;
                    let mut errors = 0usize;
                    let mut connections = 0usize;
                    let mut conn: Option<Client> = None;
                    let mut sent_total = 0usize;
                    while sent_total < per_thread {
                        let depth = PIPELINE_DEPTH.min(per_thread - sent_total);
                        let mut batch: Vec<(&str, &str, &[u8])> =
                            Vec::with_capacity(depth);
                        let mut indices = Vec::with_capacity(depth);
                        for i in 0..depth {
                            let which = (t * per_thread + sent_total + i) % bodies.len();
                            indices.push(which);
                            batch.push((
                                "POST",
                                "/v1/identify",
                                bodies[which].as_bytes(),
                            ));
                        }
                        sent_total += depth;
                        let ka = match conn.as_mut() {
                            Some(ka) => ka,
                            None => match Client::connect(addr, CLIENT_TIMEOUT) {
                                Ok(ka) => {
                                    connections += 1;
                                    conn.insert(ka)
                                }
                                Err(_) => {
                                    errors += depth;
                                    continue;
                                }
                            },
                        };
                        let sent = Instant::now();
                        match ka.pipeline(&batch) {
                            Ok(replies) => {
                                latencies.push(sent.elapsed().as_nanos() as u64);
                                for (reply, &which) in replies.iter().zip(&indices) {
                                    if reply.status == 200 {
                                        assert_eq!(
                                            reply.body, expected[which],
                                            "pipelined reply diverged from reference"
                                        );
                                        ok += 1;
                                    } else {
                                        errors += 1;
                                    }
                                }
                            }
                            Err(_) => {
                                errors += depth;
                                conn = None;
                            }
                        }
                    }
                    (latencies, ok, errors, connections)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    finish(started, outcomes)
}

/// Exact quantile of a sorted latency vector (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The log2 bucket a value falls into, mirroring `rt::obs::Hist`: bucket
/// 0 holds exact zeros, bucket k holds `[2^(k-1), 2^k)`.
fn log2_bucket(value: u64) -> i64 {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as i64
    }
}

/// Reads one 60 s windowed quantile for `name` off a `/metrics` scrape.
fn window_quantile(metrics: &str, name: &str, stat: &str) -> u64 {
    let prefix = format!("patchdb_window_{stat}{{name=\"{name}\",window_s=\"60\"}} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no `{prefix}` line in /metrics:\n{metrics}"))
}

fn main() {
    let fast = fast_mode();

    eprintln!("building tiny dataset + identify request corpus...");
    let db = PatchDb::build(&BuildOptions::tiny(11).synthesize(false)).db;
    let bodies: Vec<String> = db
        .records()
        .take(64)
        .map(|r| {
            format!("commit {}\n{}", r.commit, r.patch.to_unified_string())
        })
        .collect();
    assert!(!bodies.is_empty(), "tiny build produced no records");

    // Reference replies from a single-worker server: every mode at every
    // worker count must reproduce these bytes exactly.
    let reference = Server::start(
        ServeIndex::build(db.clone()),
        &ServeConfig::default().addr("127.0.0.1:0").threads(1),
    )
    .expect("reference server binds");
    let expected: Vec<Vec<u8>> = bodies
        .iter()
        .map(|body| {
            let reply = client::request(
                reference.addr(),
                "POST",
                "/v1/identify",
                body.as_bytes(),
            )
            .expect("reference identify");
            assert_eq!(reply.status, 200, "{}", reply.body_text());
            reply.body
        })
        .collect();
    reference.shutdown();

    let mut results = Vec::new();
    for workers in [1usize, 4, 8] {
        for mode in ["close", "keepalive", "pipelined"] {
            // Per-connection setup dominates `close`; give the faster
            // modes enough requests for a stable measurement.
            let total = match (fast, mode) {
                (true, _) => 200,
                (false, "close") => 2_000,
                (false, _) => 12_000,
            };
            let index = ServeIndex::build(db.clone());
            // The admission queue must hold a full pipelined burst:
            // 8 client threads x 64-deep pipelines = 512 concurrent
            // requests, plus headroom.
            // Baseline rows price the server with the introspection
            // runtime fully off; the pricing rows below turn each
            // piece back on against this reference.
            let config = ServeConfig::default()
                .addr("127.0.0.1:0")
                .threads(workers)
                .max_inflight(1024)
                .batch_window_ms(0)
                .flight(false)
                .sampler(false)
                .tracing(false);
            let server = Server::start(index, &config).expect("server binds on loopback");
            let addr = server.addr();
            // Warm the path (thread spawn, first forest walk) off the
            // clock.
            let _ = client::request(addr, "POST", "/v1/identify", bodies[0].as_bytes());
            // The registry is process-global: clear the previous
            // configuration's windows (and the warm-up) so this scrape
            // reflects only this run.
            obs::reset();

            let outcome = match mode {
                "close" => drive_close(addr, &bodies, &expected, total),
                "keepalive" => drive_keepalive(addr, &bodies, &expected, total),
                _ => drive_pipelined(addr, &bodies, &expected, total),
            };
            let throughput = outcome.ok as f64 / outcome.elapsed.max(1e-9);
            let (p50, p99) =
                (quantile(&outcome.latencies, 0.50), quantile(&outcome.latencies, 0.99));

            // The server's own windowed view of the same burst, scraped
            // before shutdown while the 60 s window still covers it.
            let metrics = client::request(addr, "GET", "/metrics", b"")
                .expect("scrape /metrics")
                .body_text();
            let server_p50 = window_quantile(&metrics, "serve.identify.total_ns", "p50");
            let server_p99 = window_quantile(&metrics, "serve.identify.total_ns", "p99");
            if mode != "pipelined" {
                for (stat, exact, served) in
                    [("p50", p50, server_p50), ("p99", p99, server_p99)]
                {
                    // Below ~1 ms the fixed client-side overhead the
                    // server cannot see (write/read syscalls, scheduler
                    // wakeups under core contention) is comparable to
                    // the service time itself, so allow one extra
                    // bucket of slack there.
                    let tolerance = if exact.min(served) >= 1_000_000 { 1 } else { 2 };
                    let drift = (log2_bucket(exact) - log2_bucket(served)).abs();
                    assert!(
                        drift <= tolerance,
                        "[{mode}] windowed {stat} drifted {drift} log2 buckets from \
                         the exact client-side value (client {exact} ns vs server \
                         {served} ns)"
                    );
                }
            }
            println!(
                "workers {workers} [{mode:9}]: {} ok / {} err over {} conns in \
                 {:.2}s = {throughput:.0} req/s, p50 {:.2} ms, p99 {:.2} ms \
                 (server windowed p50 {:.2} ms, p99 {:.2} ms)",
                outcome.ok,
                outcome.errors,
                outcome.connections,
                outcome.elapsed,
                p50 as f64 / 1e6,
                p99 as f64 / 1e6,
                server_p50 as f64 / 1e6,
                server_p99 as f64 / 1e6
            );
            server.shutdown();

            results.push(Json::Obj(vec![
                ("workers".into(), Json::Num(workers as f64)),
                ("mode".into(), Json::Str(mode.into())),
                ("connections".into(), Json::Num(outcome.connections as f64)),
                ("requests".into(), Json::Num(outcome.ok as f64)),
                ("errors".into(), Json::Num(outcome.errors as f64)),
                ("throughput_rps".into(), Json::Num(throughput)),
                ("p50_ns".into(), Json::Num(p50 as f64)),
                ("p99_ns".into(), Json::Num(p99 as f64)),
                ("server_p50_ns".into(), Json::Num(server_p50 as f64)),
                ("server_p99_ns".into(), Json::Num(server_p99 as f64)),
            ]));
        }
    }

    // Observability pricing: the 8-worker keep-alive point with the
    // flight recorder on, then with span mirroring on under a live
    // 97 Hz background sampler. The introspection runtime must pay its
    // own way: the acceptance bar is <= 5% throughput overhead for
    // either piece.
    //
    // Methodology. This machine's throughput swings by double-digit
    // percent between back-to-back runs, so comparing two separately
    // booted servers cannot resolve a 5% bar — best-of-N over separate
    // servers was tried and still read noise. Both toggles are
    // process-global and flip live, so instead ONE server is driven in
    // adjacent short off/on drive pairs: drift on the scale of seconds
    // cancels within each ~100 ms pair, and the median of the per-pair
    // throughput ratios discards the bursts that hit a single drive.
    let total = if fast { 200 } else { 3_000 };
    let pairs = if fast { 1 } else { 24 };
    let index = ServeIndex::build(db.clone());
    let config = ServeConfig::default()
        .addr("127.0.0.1:0")
        .threads(8)
        .max_inflight(1024)
        .batch_window_ms(0)
        .flight(false)
        .sampler(false)
        .tracing(false);
    let server = Server::start(index, &config).expect("server binds on loopback");
    let addr = server.addr();
    let _ = client::request(addr, "POST", "/v1/identify", bodies[0].as_bytes());
    let _ = drive_keepalive(addr, &bodies, &expected, total); // warm the caches
    for obs_mode in ["flight", "sampler97", "tracing"] {
        let mut ratios = Vec::new();
        let mut latencies = Vec::new();
        let mut on_rps = Vec::new();
        let mut off_rps = Vec::new();
        let (mut ok, mut errors, mut connections, mut samples) = (0usize, 0usize, 0usize, 0u64);
        for _ in 0..pairs {
            let off = drive_keepalive(addr, &bodies, &expected, total);
            // The bench drives the server in-process, so toggling the
            // recorder / starting a background sampler here instruments
            // the live worker and loop threads exactly as `patchdb
            // serve` with the toggles on (or under `/debug/profile`)
            // would behave.
            obs::flight::set_enabled(obs_mode == "flight");
            patchdb_serve::set_tracing(obs_mode == "tracing");
            let sampler = (obs_mode == "sampler97").then(|| {
                obs::sampler::set_mirroring(true);
                obs::sampler::BackgroundSampler::start(97)
            });
            let on = drive_keepalive(addr, &bodies, &expected, total);
            samples += sampler.map(|s| s.stop().samples).unwrap_or(0);
            obs::flight::set_enabled(false);
            obs::sampler::set_mirroring(false);
            patchdb_serve::set_tracing(false);
            let off_tput = off.ok as f64 / off.elapsed.max(1e-9);
            let on_tput = on.ok as f64 / on.elapsed.max(1e-9);
            ratios.push(on_tput / off_tput.max(1e-9));
            on_rps.push(on_tput);
            off_rps.push(off_tput);
            latencies.extend_from_slice(&on.latencies);
            ok += on.ok;
            errors += on.errors + off.errors;
            connections += on.connections;
        }
        let median = |xs: &mut Vec<f64>| -> f64 {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        let overhead_pct = (1.0 - median(&mut ratios)) * 100.0;
        let throughput = median(&mut on_rps);
        let baseline = median(&mut off_rps);
        // Each drive returns its latencies sorted; the concatenation
        // across drives is not.
        latencies.sort_unstable();
        let (p50, p99) = (quantile(&latencies, 0.50), quantile(&latencies, 0.99));
        println!(
            "workers 8 [keepalive, {obs_mode}]: median of {pairs} toggle pairs: \
             {ok} ok / {errors} err = {throughput:.0} req/s on, {baseline:.0} req/s off \
             ({overhead_pct:+.1}% median paired overhead), p50 {:.2} ms, p99 {:.2} ms, \
             {samples} profile samples",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
        );
        results.push(Json::Obj(vec![
            ("workers".into(), Json::Num(8.0)),
            ("mode".into(), Json::Str("keepalive".into())),
            ("obs".into(), Json::Str(obs_mode.into())),
            ("connections".into(), Json::Num(connections as f64)),
            ("requests".into(), Json::Num(ok as f64)),
            ("errors".into(), Json::Num(errors as f64)),
            ("throughput_rps".into(), Json::Num(throughput)),
            ("p50_ns".into(), Json::Num(p50 as f64)),
            ("p99_ns".into(), Json::Num(p99 as f64)),
            ("baseline_rps".into(), Json::Num(baseline)),
            ("overhead_pct".into(), Json::Num(overhead_pct)),
            ("profile_samples".into(), Json::Num(samples as f64)),
        ]));
    }
    server.shutdown();

    // Index lifecycle: how much boot time a binary snapshot saves over
    // rerunning the learning pipeline, and what a live copy-on-write
    // swap costs a client — the `/admin/reload` round trip (rebuild
    // from the snapshot + atomic swap) timed while keep-alive traffic
    // keeps hammering `/v1/identify`. Rebuilds are deterministic, so
    // the traffic thread still byte-checks every reply against the
    // reference across generations.
    let snap_path = std::env::temp_dir()
        .join(format!("patchdb_bench_{}.snapshot", std::process::id()));
    // Boot-from-build mirrors `patchdb serve FILE`: parse the dataset
    // JSON, then run the full indexing pass (weights, forest,
    // signatures). Boot-from-snapshot replaces all of that with one
    // decode.
    let json_path = std::env::temp_dir()
        .join(format!("patchdb_bench_{}.json", std::process::id()));
    std::fs::write(&json_path, db.to_json().expect("dataset serializes"))
        .expect("dataset written");
    let build_started = Instant::now();
    let text = std::fs::read_to_string(&json_path).expect("dataset reads");
    let lifecycle_index =
        ServeIndex::build(PatchDb::from_json(&text).expect("dataset parses"));
    let boot_build_ns = build_started.elapsed().as_nanos() as u64;
    std::fs::remove_file(&json_path).ok();
    lifecycle_index.save_snapshot(&snap_path).expect("snapshot written");
    let snapshot_bytes = std::fs::metadata(&snap_path).expect("snapshot stat").len();
    let load_started = Instant::now();
    let booted = ServeIndex::load_snapshot(&snap_path).expect("snapshot loads");
    let boot_snapshot_ns = load_started.elapsed().as_nanos() as u64;
    drop(lifecycle_index);

    let swaps = if fast { 3 } else { 16 };
    let server = Server::start(
        booted,
        &ServeConfig::default()
            .addr("127.0.0.1:0")
            .threads(4)
            .batch_window_ms(0)
            .flight(false)
            .sampler(false)
            .reload_from(ReloadSource::Snapshot(snap_path.display().to_string())),
    )
    .expect("lifecycle server binds");
    let addr = server.addr();
    let _ = client::request(addr, "POST", "/v1/identify", bodies[0].as_bytes());

    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut swap_ns = Vec::with_capacity(swaps);
    let traffic_errors = std::thread::scope(|scope| {
        let traffic = scope.spawn(|| {
            let mut errors = 0usize;
            let mut served = 0usize;
            let mut conn: Option<Client> = None;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let which = served % bodies.len();
                let ka = match conn.as_mut() {
                    Some(ka) => ka,
                    None => match Client::connect(addr, CLIENT_TIMEOUT) {
                        Ok(ka) => conn.insert(ka),
                        Err(_) => {
                            errors += 1;
                            continue;
                        }
                    },
                };
                match ka.send("POST", "/v1/identify", bodies[which].as_bytes()) {
                    Ok(reply) if reply.status == 200 => {
                        assert_eq!(
                            reply.body, expected[which],
                            "identify reply diverged across a swap"
                        );
                    }
                    _ => {
                        errors += 1;
                        conn = None;
                    }
                }
                served += 1;
            }
            errors
        });
        for _ in 0..swaps {
            let sent = Instant::now();
            let reply =
                client::request(addr, "POST", "/admin/reload", b"").expect("reload");
            assert_eq!(reply.status, 200, "reload failed: {}", reply.body_text());
            swap_ns.push(sent.elapsed().as_nanos() as u64);
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        traffic.join().unwrap()
    });
    assert_eq!(traffic_errors, 0, "traffic failed during a copy-on-write swap");
    let health = client::request(addr, "GET", "/healthz", b"").expect("healthz");
    assert!(
        health.body_text().starts_with(&format!("ok gen={} up=", swaps + 1)),
        "every reload must bump the served generation: {}",
        health.body_text()
    );
    server.shutdown();
    std::fs::remove_file(&snap_path).ok();

    swap_ns.sort_unstable();
    let (swap_p50, swap_p99) = (quantile(&swap_ns, 0.50), quantile(&swap_ns, 0.99));
    println!(
        "lifecycle: boot from build {:.1} ms, boot from snapshot {:.1} ms \
         ({:.1}x faster, {snapshot_bytes} bytes on disk); {swaps} live swaps \
         under traffic, reload p50 {:.2} ms, p99 {:.2} ms, 0 failed requests",
        boot_build_ns as f64 / 1e6,
        boot_snapshot_ns as f64 / 1e6,
        boot_build_ns as f64 / boot_snapshot_ns.max(1) as f64,
        swap_p50 as f64 / 1e6,
        swap_p99 as f64 / 1e6,
    );
    let lifecycle = Json::Obj(vec![
        ("boot_build_ns".into(), Json::Num(boot_build_ns as f64)),
        ("boot_snapshot_ns".into(), Json::Num(boot_snapshot_ns as f64)),
        ("snapshot_bytes".into(), Json::Num(snapshot_bytes as f64)),
        ("swaps".into(), Json::Num(swaps as f64)),
        ("swap_p50_ns".into(), Json::Num(swap_p50 as f64)),
        ("swap_p99_ns".into(), Json::Num(swap_p99 as f64)),
        ("traffic_errors".into(), Json::Num(traffic_errors as f64)),
    ]);

    let json = Json::Obj(vec![
        ("schema".into(), Json::Str("patchdb-serve/v2".into())),
        ("fast_mode".into(), Json::Bool(fast)),
        ("client_threads".into(), Json::Num(CLIENT_THREADS as f64)),
        ("pipeline_depth".into(), Json::Num(PIPELINE_DEPTH as f64)),
        ("lifecycle".into(), lifecycle),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = std::env::var("PATCHDB_BENCH_SERVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_owned()
    });
    std::fs::write(&path, json.to_pretty_string() + "\n").expect("write BENCH_serve.json");
    println!("wrote {path}");
}
