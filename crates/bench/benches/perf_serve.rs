//! Loopback load generation against `patchdb-serve`: boots a server over
//! a tiny built dataset at several worker-pool sizes and hammers
//! `/v1/identify` from concurrent client threads, reporting throughput
//! and exact client-side p50/p99 latency per configuration — written to
//! `BENCH_serve.json` at the repo root.
//!
//! Each configuration also scrapes the server's own `/metrics` windowed
//! quantiles (`serve.identify.total_ns`, 60 s window) and cross-checks
//! them against the exact client-side quantiles: the server buckets
//! into log2 histograms, so the two must land within one bucket edge of
//! each other — a live end-to-end check that the telemetry pipeline
//! measures the same reality the client observes.
//!
//! * `PATCHDB_BENCH_FAST=1` shrinks the request count for the CI smoke
//!   run (the JSON is still produced and must still parse).
//! * `PATCHDB_BENCH_SERVE_JSON=<path>` overrides the output location.

use std::net::SocketAddr;
use std::time::Instant;

use patchdb::{BuildOptions, PatchDb};
use patchdb_rt::json::Json;
use patchdb_rt::obs;
use patchdb_serve::{client, ServeConfig, ServeIndex, Server};

const CLIENT_THREADS: usize = 8;

fn fast_mode() -> bool {
    std::env::var_os("PATCHDB_BENCH_FAST").is_some()
}

/// Drives `total` identify requests from [`CLIENT_THREADS`] concurrent
/// clients; returns (elapsed seconds, per-request latencies ns, errors).
fn drive(addr: SocketAddr, bodies: &[String], total: usize) -> (f64, Vec<u64>, usize) {
    let started = Instant::now();
    let per_thread = total.div_ceil(CLIENT_THREADS);
    let outcomes: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut errors = 0usize;
                    for i in 0..per_thread {
                        let body = &bodies[(t * per_thread + i) % bodies.len()];
                        let sent = Instant::now();
                        match client::request(addr, "POST", "/v1/identify", body.as_bytes()) {
                            Ok(reply) if reply.status == 200 => {
                                latencies.push(sent.elapsed().as_nanos() as u64);
                            }
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut errors = 0;
    for (l, e) in outcomes {
        latencies.extend(l);
        errors += e;
    }
    latencies.sort_unstable();
    (elapsed, latencies, errors)
}

/// Exact quantile of a sorted latency vector (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The log2 bucket a value falls into, mirroring `rt::obs::Hist`: bucket
/// 0 holds exact zeros, bucket k holds `[2^(k-1), 2^k)`.
fn log2_bucket(value: u64) -> i64 {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as i64
    }
}

/// Reads one 60 s windowed quantile for `name` off a `/metrics` scrape.
fn window_quantile(metrics: &str, name: &str, stat: &str) -> u64 {
    let prefix = format!("patchdb_window_{stat}{{name=\"{name}\",window_s=\"60\"}} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no `{prefix}` line in /metrics:\n{metrics}"))
}

fn main() {
    let fast = fast_mode();
    let total = if fast { 200 } else { 2_000 };

    eprintln!("building tiny dataset + identify request corpus...");
    let db = PatchDb::build(&BuildOptions::tiny(11).synthesize(false)).db;
    let bodies: Vec<String> = db
        .records()
        .take(64)
        .map(|r| {
            format!("commit {}\n{}", r.commit, r.patch.to_unified_string())
        })
        .collect();
    assert!(!bodies.is_empty(), "tiny build produced no records");

    let mut results = Vec::new();
    for workers in [1usize, 4, 8] {
        let index = ServeIndex::build(db.clone());
        let config = ServeConfig::default()
            .addr("127.0.0.1:0")
            .threads(workers)
            .max_inflight(256);
        let server = Server::start(index, &config).expect("server binds on loopback");
        // Warm the path (thread spawn, first forest walk) off the clock.
        let _ = client::request(server.addr(), "POST", "/v1/identify", bodies[0].as_bytes());
        // The registry is process-global: clear the previous
        // configuration's windows (and the warm-up) so this scrape
        // reflects only this run.
        obs::reset();

        let (elapsed, latencies, errors) = drive(server.addr(), &bodies, total);
        let requests = latencies.len();
        let throughput = requests as f64 / elapsed.max(1e-9);
        let (p50, p99) = (quantile(&latencies, 0.50), quantile(&latencies, 0.99));

        // The server's own windowed view of the same burst, scraped
        // before shutdown while the 60 s window still covers it.
        let metrics = client::request(server.addr(), "GET", "/metrics", b"")
            .expect("scrape /metrics")
            .body_text();
        let server_p50 = window_quantile(&metrics, "serve.identify.total_ns", "p50");
        let server_p99 = window_quantile(&metrics, "serve.identify.total_ns", "p99");
        for (stat, exact, served) in [("p50", p50, server_p50), ("p99", p99, server_p99)] {
            let drift = (log2_bucket(exact) - log2_bucket(served)).abs();
            assert!(
                drift <= 1,
                "windowed {stat} drifted {drift} log2 buckets from the exact \
                 client-side value (client {exact} ns vs server {served} ns)"
            );
        }
        println!(
            "workers {workers}: {requests} ok / {errors} err in {elapsed:.2}s \
             = {throughput:.0} req/s, p50 {:.2} ms, p99 {:.2} ms \
             (server windowed p50 {:.2} ms, p99 {:.2} ms)",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
            server_p50 as f64 / 1e6,
            server_p99 as f64 / 1e6
        );
        server.shutdown();

        results.push(Json::Obj(vec![
            ("workers".into(), Json::Num(workers as f64)),
            ("requests".into(), Json::Num(requests as f64)),
            ("errors".into(), Json::Num(errors as f64)),
            ("throughput_rps".into(), Json::Num(throughput)),
            ("p50_ns".into(), Json::Num(p50 as f64)),
            ("p99_ns".into(), Json::Num(p99 as f64)),
            ("server_p50_ns".into(), Json::Num(server_p50 as f64)),
            ("server_p99_ns".into(), Json::Num(server_p99 as f64)),
        ]));
    }

    let json = Json::Obj(vec![
        ("schema".into(), Json::Str("patchdb-serve/v1".into())),
        ("fast_mode".into(), Json::Bool(fast)),
        ("client_threads".into(), Json::Num(CLIENT_THREADS as f64)),
        ("requests_per_config".into(), Json::Num(total as f64)),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = std::env::var("PATCHDB_BENCH_SERVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_owned()
    });
    std::fs::write(&path, json.to_pretty_string() + "\n").expect("write BENCH_serve.json");
    println!("wrote {path}");
}
