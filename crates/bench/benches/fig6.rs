//! Figure 6 — "Distribution comparison between NVD-based and wild-based
//! datasets in terms of code changes".
//!
//! Paper: the NVD-based dataset is long-tailed with types 11/8/3 covering
//! ≈60% (type 11, redesign, is the head); the wild-based dataset found by
//! nearest link search looks different — type 8 (function calls) becomes
//! the head and type 11 collapses to ≈5%.

use patchdb::{PatchDb, ALL_CATEGORIES};
use patchdb_bench::{build_experiment, print_table};

fn main() {
    let t0 = std::time::Instant::now();
    let report = build_experiment(606, false);
    let db = &report.db;
    println!("dataset: {}", db.stats());

    let nvd = PatchDb::category_distribution(&db.nvd);
    let wild = PatchDb::category_distribution(&db.wild);

    let bar = |p: f64| "#".repeat((p * 100.0).round() as usize / 2);
    let rows: Vec<Vec<String>> = ALL_CATEGORIES
        .iter()
        .map(|c| {
            let n = nvd.get(c).copied().unwrap_or(0.0);
            let w = wild.get(c).copied().unwrap_or(0.0);
            vec![
                format!("{:>2}", c.type_id()),
                format!("{:5.1}%", 100.0 * n),
                bar(n),
                format!("{:5.1}%", 100.0 * w),
                bar(w),
            ]
        })
        .collect();
    print_table(
        "Figure 6: NVD-based vs wild-based category distribution",
        &["type", "NVD %", "NVD", "wild %", "wild"],
        &rows,
    );

    // The headline observations of Section IV-D, checked numerically.
    let head3_nvd: f64 = [10usize, 7, 2] // types 11, 8, 3 (0-based)
        .iter()
        .map(|&i| nvd.get(&ALL_CATEGORIES[i]).copied().unwrap_or(0.0))
        .sum();
    let redesign_wild = wild.get(&ALL_CATEGORIES[10]).copied().unwrap_or(0.0);
    println!(
        "\nNVD head classes (11, 8, 3) cover {:.0}% (paper: ≈60%)",
        100.0 * head3_nvd
    );
    println!(
        "redesign (type 11) in the wild: {:.1}% (paper: ≈5%)",
        100.0 * redesign_wild
    );
    let wild_head = ALL_CATEGORIES
        .iter()
        .max_by(|a, b| {
            wild.get(a).copied().unwrap_or(0.0).total_cmp(&wild.get(b).copied().unwrap_or(0.0))
        })
        .expect("12 categories");
    println!(
        "wild head class: type {} ({}) (paper: type 8)",
        wild_head.type_id(),
        wild_head.label()
    );
    println!("\n[fig6 completed in {:?}]", t0.elapsed());
}
