//! Table IV — "Performance w/o or w/ synthetic patches":
//! does source-level oversampling help the RNN security-patch classifier?
//!
//! Paper:
//!
//! | Dataset    | Synthetic             | Precision      | Recall        |
//! |------------|-----------------------|----------------|---------------|
//! | NVD        | –                     | 82.1%          | 84.8%         |
//! | NVD        | 17K sec + 20K nonsec  | 86.0% (+3.9)   | 87.2% (+2.4)  |
//! | NVD+Wild   | –                     | 92.9%          | 61.1%         |
//! | NVD+Wild   | 58K sec + 129K nonsec | 93.0% (+0.1)   | 61.2% (+0.1)  |
//!
//! Expected shape here: a visible improvement from synthetic data on the
//! small (NVD-only) dataset, and a negligible change on the larger
//! NVD+wild dataset — "the oversampling technique is effective … if we
//! only have a small dataset" (Section IV-C).

use patchdb::PatchRecord;
use patchdb_bench::{build_experiment, build_vocab, print_table, rnn_pairs, split_records};
use patchdb_ml::{ConfusionMatrix, Metrics};
use patchdb_nn::{encode_patch, RnnClassifier, RnnConfig, TokenSequence, Vocabulary};

fn rnn_config(vocab: &Vocabulary, seed: u64) -> RnnConfig {
    RnnConfig {
        vocab_size: vocab.size().max(64),
        embed_dim: 24,
        hidden_dim: 32,
        epochs: 5,
        lr: 5e-3,
        max_len: 160,
        seed,
    }
}

fn eval_rnn(model: &RnnClassifier, test: &[(TokenSequence, bool)]) -> Metrics {
    let mut cm = ConfusionMatrix::default();
    for (seq, label) in test {
        cm.record(model.predict(seq), *label);
    }
    Metrics::new(cm)
}

#[allow(clippy::too_many_arguments)]
fn run_condition(
    name: &str,
    pos: &[&PatchRecord],
    neg: &[&PatchRecord],
    synthetic: &[&patchdb::SyntheticRecord],
    vocab: &Vocabulary,
    seed: u64,
    rows: &mut Vec<Vec<String>>,
    synth_label: &str,
) {
    let (pos_train, pos_test) = split_records(pos, 0.8, seed);
    let (neg_train, neg_test) = split_records(neg, 0.8, seed ^ 1);

    let train = rnn_pairs(vocab, &pos_train, &neg_train);
    let test = rnn_pairs(vocab, &pos_test, &neg_test);

    // Without synthetic data.
    let mut model = RnnClassifier::new(rnn_config(vocab, seed));
    model.train(&train);
    let base = eval_rnn(&model, &test);
    rows.push(vec![
        name.into(),
        "-".into(),
        format!("{:.1}%", 100.0 * base.precision()),
        format!("{:.1}%", 100.0 * base.recall()),
    ]);

    // With synthetic data derived from *training* records only (the
    // paper's "generated solely based on the training set").
    let train_ids: std::collections::HashSet<_> =
        pos_train.iter().chain(&neg_train).map(|r| r.commit).collect();
    let mut augmented = train.clone();
    let mut n_sec = 0usize;
    let mut n_nonsec = 0usize;
    for s in synthetic {
        if train_ids.contains(&s.derived_from) {
            augmented.push((encode_patch(&s.patch, vocab), s.is_security));
            if s.is_security {
                n_sec += 1;
            } else {
                n_nonsec += 1;
            }
        }
    }
    let mut model2 = RnnClassifier::new(rnn_config(vocab, seed));
    model2.train(&augmented);
    let with = eval_rnn(&model2, &test);
    rows.push(vec![
        name.into(),
        format!("{synth_label} ({n_sec} sec + {n_nonsec} nonsec)"),
        format!(
            "{:.1}% ({:+.1})",
            100.0 * with.precision(),
            100.0 * (with.precision() - base.precision())
        ),
        format!(
            "{:.1}% ({:+.1})",
            100.0 * with.recall(),
            100.0 * (with.recall() - base.recall())
        ),
    ]);
}

fn main() {
    let t0 = std::time::Instant::now();
    let report = build_experiment(404, true);
    let db = &report.db;
    println!("dataset: {}", db.stats());

    // Negative partner sets: the cleaned non-security records, split so
    // the NVD condition gets ~2× negatives (paper: 4076 + 8352) and the
    // NVD+wild condition gets the rest.
    let nvd_pos: Vec<&PatchRecord> = db.nvd.iter().collect();
    let all_pos: Vec<&PatchRecord> = db.security_patches().collect();
    let negs: Vec<&PatchRecord> = db.non_security.iter().collect();
    let nvd_neg: Vec<&PatchRecord> =
        negs.iter().copied().take(2 * nvd_pos.len()).collect();

    let synthetic: Vec<&patchdb::SyntheticRecord> = db.synthetic.iter().collect();

    // One vocabulary over all natural patches keeps conditions comparable.
    let vocab = build_vocab(
        all_pos.iter().map(|r| &r.patch).chain(negs.iter().map(|r| &r.patch)),
        4096,
    );

    let mut rows = Vec::new();
    run_condition("NVD", &nvd_pos, &nvd_neg, &synthetic, &vocab, 21, &mut rows, "synth");
    run_condition("NVD+Wild", &all_pos, &negs, &synthetic, &vocab, 22, &mut rows, "synth");

    print_table(
        "Table IV: RNN performance w/o and w/ synthetic patches",
        &["Dataset", "Synthetic Dataset", "Precision", "Recall"],
        &rows,
    );
    println!("\npaper: NVD 82.1→86.0% precision, 84.8→87.2% recall (clear gain);");
    println!("       NVD+Wild 92.9→93.0%, 61.1→61.2% (no meaningful gain)");
    println!("\n[table4 completed in {:?}]", t0.elapsed());
}
