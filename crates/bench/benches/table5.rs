//! Table V — "Security patch distribution in PatchDB":
//! the 12-category change-pattern composition of the assembled dataset,
//! from a 1K sample (as the paper's manual study) — here both via ground
//! truth (standing in for the three experts) and via the rule-based
//! automatic classifier.
//!
//! Paper (1K sample): type 8 (function calls) 24.4% head; types 1/3/8
//! together >50%; type 12 (others) 0.8% tail.

use patchdb::{classify_patch, ALL_CATEGORIES};
use patchdb_bench::{build_experiment, print_table};
use patchdb_rt::rng::SliceRandom;

/// Paper values for side-by-side comparison, in Table V order.
const PAPER: [f64; 12] =
    [10.8, 9.1, 18.0, 4.8, 9.1, 1.8, 2.6, 24.4, 1.7, 5.0, 12.0, 0.8];

fn main() {
    let t0 = std::time::Instant::now();
    let report = build_experiment(505, false);
    let db = &report.db;
    println!("dataset: {}", db.stats());

    // 1K sample of natural security patches, like the paper's study.
    let mut rng = patchdb_rt::rng::Xoshiro256pp::seed_from_u64(55);
    let mut sample: Vec<&patchdb::PatchRecord> = db.security_patches().collect();
    sample.shuffle(&mut rng);
    sample.truncate(1_000);

    let mut truth_counts = [0usize; 12];
    let mut auto_counts = [0usize; 12];
    for r in &sample {
        if let Some(c) = r.truth_category {
            truth_counts[c.type_id() - 1] += 1;
        }
        auto_counts[classify_patch(&r.patch).type_id() - 1] += 1;
    }
    let total: usize = truth_counts.iter().sum();

    let rows: Vec<Vec<String>> = ALL_CATEGORIES
        .iter()
        .enumerate()
        .map(|(i, c)| {
            vec![
                c.type_id().to_string(),
                c.label().to_owned(),
                format!("{:.1}%", 100.0 * truth_counts[i] as f64 / total.max(1) as f64),
                format!("{:.1}%", 100.0 * auto_counts[i] as f64 / sample.len().max(1) as f64),
                format!("{:.1}%", PAPER[i]),
            ]
        })
        .collect();
    print_table(
        "Table V: security patch distribution in PatchDB (1K sample)",
        &["ID", "Type of patch pattern", "% (truth)", "% (auto)", "% (paper)"],
        &rows,
    );

    // Agreement between automatic classification and ground truth.
    let agree = sample
        .iter()
        .filter(|r| r.truth_category == Some(classify_patch(&r.patch)))
        .count();
    println!(
        "\nrule-based classifier agrees with ground truth on {}/{} = {:.1}% of the sample",
        agree,
        sample.len(),
        100.0 * agree as f64 / sample.len().max(1) as f64
    );
    println!("(the paper's three experts cross-checked labels manually)");
    println!("\n[table5 completed in {:?}]", t0.elapsed());
}
