//! Ablations of the nearest link search design choices DESIGN.md calls
//! out (not a paper table — supporting analysis for Sections III-B-2/3):
//!
//! 1. **feature weighting** — `w_j = 1/max|a_j|` vs raw (identity)
//!    distances: without normalization the character/line-count features
//!    dominate the metric;
//! 2. **link exclusivity** — nearest *link* (each wild patch claimed at
//!    most once) vs plain nearest *neighbor* (k-NN with k=1, duplicates
//!    allowed then deduplicated), the distinction Section III-B-3 draws;
//! 3. **greedy order** — Algorithm 1's global-minimum-first order vs a
//!    naive fixed row order.

use patchdb_corpus::{GitHubForge, VerificationOracle};
use patchdb_features::{
    apply_weights, euclidean, extract, learn_weights, FeatureVector, RepoContext, Weights,
};
use patchdb_mine::{collect_wild, mine_nvd, sample_wild};
use patchdb_nls::nearest_link_search;

use patchdb_bench::{bench_options, bench_scale, print_table};

fn main() {
    let t0 = std::time::Instant::now();
    let mut options = bench_options(808);
    options.corpus.mean_commits_per_repo =
        ((60.0 * bench_scale()).round() as usize).max(10);
    let forge = GitHubForge::generate(&options.corpus);
    let oracle = VerificationOracle::new(0.02, 13);

    let mined = mine_nvd(&forge);
    let contexts: std::collections::HashMap<&str, RepoContext> = forge
        .repos()
        .iter()
        .map(|r| {
            (r.name.as_str(), RepoContext {
                total_files: r.total_files,
                total_functions: r.total_functions,
            })
        })
        .collect();
    let sec: Vec<FeatureVector> = mined
        .patches
        .iter()
        .map(|m| extract(&m.patch, contexts.get(m.repo.as_str())))
        .collect();

    let wild = collect_wild(&forge, &mined.claimed_ids());
    let pool = sample_wild(&wild, (8_000.0 * bench_scale()).round() as usize, 4);
    let pool_f: Vec<FeatureVector> = pool
        .iter()
        .map(|w| {
            let change = forge.materialize(w.commit);
            let patch = change.patch.retain_c_files().unwrap_or(change.patch);
            extract(&patch, Some(&w.repo_context()))
        })
        .collect();

    let ratio = |candidates: &[usize]| -> (usize, f64) {
        let hits = candidates.iter().filter(|&&i| oracle.verify(pool[i].commit)).count();
        (candidates.len(), hits as f64 / candidates.len().max(1) as f64)
    };
    let project = |w: &Weights, xs: &[FeatureVector]| -> Vec<FeatureVector> {
        xs.iter().map(|v| apply_weights(v, w)).collect()
    };

    let learned = learn_weights(sec.iter().chain(pool_f.iter()));
    let sec_w = project(&learned, &sec);
    let pool_w = project(&learned, &pool_f);

    let mut rows = Vec::new();
    let mut push = |name: &str, cands: &[usize]| {
        let (n, r) = ratio(cands);
        rows.push(vec![name.to_owned(), n.to_string(), format!("{:.0}%", 100.0 * r)]);
    };

    // 1a. Full method: weighted nearest link.
    let weighted_links = nearest_link_search(&sec_w, &pool_w);
    push("weighted nearest link (full method)", &weighted_links);

    // 1b. Identity weights.
    let raw_links = nearest_link_search(&sec, &pool_f);
    push("unweighted distances", &raw_links);

    // 2. k-NN (k=1, duplicates collapsed): each security patch's nearest
    // neighbor regardless of prior claims.
    let mut knn: Vec<usize> = sec_w
        .iter()
        .map(|s| {
            pool_w
                .iter()
                .enumerate()
                .min_by(|a, b| euclidean(s, a.1).total_cmp(&euclidean(s, b.1)))
                .map(|(i, _)| i)
                .expect("non-empty pool")
        })
        .collect();
    knn.sort_unstable();
    knn.dedup();
    push("nearest neighbor (kNN k=1, deduped)", &knn);

    // 3. Naive row-order greedy: assign in index order, skipping claimed.
    let mut used = vec![false; pool_w.len()];
    let mut row_order = Vec::with_capacity(sec_w.len());
    for s in &sec_w {
        let best = pool_w
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .min_by(|a, b| euclidean(s, a.1).total_cmp(&euclidean(s, b.1)))
            .map(|(i, _)| i)
            .expect("pool larger than seed set");
        used[best] = true;
        row_order.push(best);
    }
    push("row-order greedy (no global argmin)", &row_order);

    print_table(
        "Ablation: nearest link search design choices",
        &["Variant", "Candidates", "Security Patches"],
        &rows,
    );
    println!("\nexpected: the full method leads; unweighted distances degrade;");
    println!("kNN yields fewer (deduplicated) candidates at similar precision —");
    println!("the paper's point is that links maximize *distinct* candidates.");
    println!("\n[ablation completed in {:?}]", t0.elapsed());
}
