//! Table II — "# of security patches identified in five rounds":
//! the five-round nearest-link augmentation protocol over Sets I–III.
//!
//! Paper (at 6M-commit scale):
//!
//! | Set        | Round | Candidates | Verified | Ratio |
//! |------------|-------|-----------:|---------:|------:|
//! | I: 100K    | 1     | 4076       | 895      | 22%   |
//! | I: 100K    | 2     | 4971       | 1235     | 25%   |
//! | I: 100K    | 3     | 6206       | 993      | 16%   |
//! | II: 200K   | 4     | 7199       | 2088     | 29%   |
//! | III: 200K  | 5     | 9287       | 2786     | 30%   |
//!
//! Expected shape here (≈1/20 scale): candidates grow round over round,
//! ratios sit in the low-to-high 20s, and the larger Sets II/III verify at
//! a higher rate than Set I — ~3× the 6–10% brute-force base rate.

use patchdb_bench::{build_experiment, print_table};

fn main() {
    let t0 = std::time::Instant::now();
    let report = build_experiment(2021, false);

    let rows: Vec<Vec<String>> = report
        .rounds
        .iter()
        .map(|r| {
            vec![
                format!("{}: {}", r.pool, r.search_range),
                r.round.to_string(),
                r.candidates.to_string(),
                r.verified_security.to_string(),
                format!("{:.0}%", 100.0 * r.ratio),
            ]
        })
        .collect();
    print_table(
        "Table II: security patches identified per augmentation round",
        &["Search Range", "Round", "Candidates", "Verified Sec.", "Ratio"],
        &rows,
    );

    let stats = report.db.stats();
    println!(
        "\nfinal dataset: {} NVD-based + {} wild-based security patches, {} cleaned non-security",
        stats.nvd_security, stats.wild_security, stats.non_security
    );
    println!(
        "base security rate in the wild is ~8%; mean round ratio {:.0}% → ~{:.1}× brute-force efficiency",
        100.0 * report.rounds.iter().map(|r| r.ratio).sum::<f64>() / report.rounds.len() as f64,
        report.rounds.iter().map(|r| r.ratio).sum::<f64>() / report.rounds.len() as f64 / 0.08
    );
    println!("paper: 22% / 25% / 16% / 29% / 30%, i.e. ~3× over the 6–10% base rate");
    println!("\n[table2 completed in {:?}]", t0.elapsed());
}
