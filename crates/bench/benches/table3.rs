//! Table III — "Comparison with other augmentation methods":
//! given the NVD-based dataset (positives) and a cleaned non-security set,
//! how many of each method's candidates from a 200K-scale unlabeled pool
//! are real security patches?
//!
//! Paper: brute force 8%, pseudo labeling 13%, uncertainty-based labeling
//! 12% (1174 candidates), nearest link search 29%.
//!
//! Expected shape here: NLS well above all three baselines; brute force at
//! the ~8% base rate; model-driven baselines in between (they overfit the
//! NVD distribution, which differs from the wild's — Section IV-B).

use patchdb_corpus::{GitHubForge, VerificationOracle};
use patchdb_features::{apply_weights, extract, learn_weights, FeatureVector};
use patchdb_mine::{collect_wild, mine_nvd, sample_wild};
use patchdb_nls::{
    brute_force_candidates, nearest_link_search, pseudo_label_candidates,
    uncertainty_candidates,
};

use patchdb_bench::{bench_options, print_table};

fn main() {
    let t0 = std::time::Instant::now();
    let options = bench_options(333);
    let forge = GitHubForge::generate(&options.corpus);
    let oracle = VerificationOracle::new(0.02, 77);

    // Labeled data: the NVD-based security set plus ~2× verified
    // non-security patches (the paper trains on 4076 + 8352).
    let mined = mine_nvd(&forge);
    let contexts: std::collections::HashMap<&str, patchdb_features::RepoContext> = forge
        .repos()
        .iter()
        .map(|r| {
            (r.name.as_str(), patchdb_features::RepoContext {
                total_files: r.total_files,
                total_functions: r.total_functions,
            })
        })
        .collect();
    let nvd_features: Vec<FeatureVector> = mined
        .patches
        .iter()
        .map(|m| extract(&m.patch, contexts.get(m.repo.as_str())))
        .collect();

    let wild = collect_wild(&forge, &mined.claimed_ids());
    let neg_source = sample_wild(&wild, 4 * mined.patches.len(), 11);
    let mut neg_features = Vec::new();
    for w in &neg_source {
        if neg_features.len() >= 2 * nvd_features.len() {
            break;
        }
        if !oracle.verify(w.commit) {
            let change = forge.materialize(w.commit);
            let patch = change.patch.retain_c_files().unwrap_or(change.patch);
            neg_features.push(extract(&patch, Some(&w.repo_context())));
        }
    }

    // The unlabeled pool (disjoint from the negatives' sample by reseed).
    let pool_size = (20_000.0 * patchdb_bench::bench_scale()).round() as usize;
    let pool = sample_wild(&wild, pool_size, 999);
    let pool_features: Vec<FeatureVector> = pool
        .iter()
        .map(|w| {
            let change = forge.materialize(w.commit);
            let patch = change.patch.retain_c_files().unwrap_or(change.patch);
            extract(&patch, Some(&w.repo_context()))
        })
        .collect();

    let hit_rate = |candidates: &[usize]| -> f64 {
        let hits = candidates.iter().filter(|&&i| oracle.verify(pool[i].commit)).count();
        hits as f64 / candidates.len().max(1) as f64
    };
    let k = nvd_features.len();

    // 1. Brute force: a 1K random subset of the whole pool.
    let bf = brute_force_candidates(pool.len(), 1_000.min(pool.len()), 5);
    let bf_rate = hit_rate(&bf);

    // 2. Pseudo labeling: top-K most confident Random Forest predictions.
    let pl = pseudo_label_candidates(&nvd_features, &neg_features, &pool_features, k, 6);
    let pl_rate = hit_rate(&pl);

    // 3. Uncertainty-based labeling: ten-classifier consensus.
    let un = uncertainty_candidates(&nvd_features, &neg_features, &pool_features, 7);
    let un_rate = hit_rate(&un);

    // 4. Nearest link search in the weighted feature space.
    let weights = learn_weights(nvd_features.iter().chain(pool_features.iter()));
    let sec_w: Vec<FeatureVector> =
        nvd_features.iter().map(|v| apply_weights(v, &weights)).collect();
    let pool_w: Vec<FeatureVector> =
        pool_features.iter().map(|v| apply_weights(v, &weights)).collect();
    let nls = nearest_link_search(&sec_w, &pool_w);
    let nls_rate = hit_rate(&nls);

    print_table(
        "Table III: comparison with other augmentation methods",
        &["Method", "Unlabeled", "Candidates", "Security Patches"],
        &[
            vec![
                "Brute Force Search".into(),
                pool.len().to_string(),
                pool.len().to_string(),
                format!("{:.0}%", 100.0 * bf_rate),
            ],
            vec![
                "Pseudo Labeling".into(),
                pool.len().to_string(),
                pl.len().to_string(),
                format!("{:.0}%", 100.0 * pl_rate),
            ],
            vec![
                "Uncertainty-based Labeling".into(),
                pool.len().to_string(),
                un.len().to_string(),
                format!("{:.0}%", 100.0 * un_rate),
            ],
            vec![
                "Nearest Link Search (ours)".into(),
                pool.len().to_string(),
                nls.len().to_string(),
                format!("{:.0}%", 100.0 * nls_rate),
            ],
        ],
    );
    println!("\npaper:      8% / 13% / 12% / 29%");
    println!(
        "efficiency: NLS finds security patches at {:.1}× the brute-force rate (paper ≈3.6×)",
        nls_rate / bf_rate.max(1e-9)
    );
    println!("\n[table3 completed in {:?}]", t0.elapsed());
}
