//! Model-architecture ablation (supporting analysis, not a paper table):
//! the paper's "RNN" on the security-patch identification task, across
//! recurrent backbones (GRU vs LSTM) and against the feature-space
//! ensembles (Random Forest, AdaBoost). Run on the NVD+wild condition of
//! Table VI.

use patchdb::PatchRecord;
use patchdb_bench::{
    build_experiment, build_vocab, features_dataset, print_table, rnn_pairs, split_records,
};
use patchdb_ml::{evaluate, AdaBoost, Classifier, ConfusionMatrix, Metrics, RandomForest};
use patchdb_nn::{Backbone, RnnClassifier, RnnConfig, TokenSequence};

fn main() {
    let t0 = std::time::Instant::now();
    let report = build_experiment(909, false);
    let db = &report.db;
    println!("dataset: {}", db.stats());

    let pos: Vec<&PatchRecord> = db.security_patches().collect();
    let neg: Vec<&PatchRecord> = db.non_security.iter().collect();
    let (pos_tr, pos_te) = split_records(&pos, 0.8, 1);
    let (neg_tr, neg_te) = split_records(&neg, 0.8, 2);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, m: Metrics, secs: f64| {
        rows.push(vec![
            name.into(),
            format!("{:.1}%", 100.0 * m.precision()),
            format!("{:.1}%", 100.0 * m.recall()),
            format!("{:.1}%", 100.0 * m.f1()),
            format!("{secs:.1}s"),
        ]);
    };

    // Feature-space models.
    let train_ds = features_dataset(&pos_tr, &neg_tr);
    let test_ds = features_dataset(&pos_te, &neg_te);
    let t = std::time::Instant::now();
    let mut rf = RandomForest::new(32, 12, 5);
    rf.fit(&train_ds);
    push("Random Forest (60 features)", evaluate(&rf, &test_ds), t.elapsed().as_secs_f64());

    let t = std::time::Instant::now();
    let mut ada = AdaBoost::new(60, 2, 5);
    ada.fit(&train_ds);
    push("AdaBoost (60 features)", evaluate(&ada, &test_ds), t.elapsed().as_secs_f64());

    // Token-space models.
    let vocab = build_vocab(
        pos.iter().map(|r| &r.patch).chain(neg.iter().map(|r| &r.patch)),
        4096,
    );
    let cfg = RnnConfig {
        vocab_size: vocab.size().max(64),
        embed_dim: 24,
        hidden_dim: 32,
        epochs: 4,
        lr: 5e-3,
        max_len: 160,
        seed: 9,
    };
    let train_pairs = rnn_pairs(&vocab, &pos_tr, &neg_tr);
    let test_pairs = rnn_pairs(&vocab, &pos_te, &neg_te);
    let eval_rnn = |model: &RnnClassifier, test: &[(TokenSequence, bool)]| -> Metrics {
        let mut cm = ConfusionMatrix::default();
        for (seq, label) in test {
            cm.record(model.predict(seq), *label);
        }
        Metrics::new(cm)
    };

    for backbone in [Backbone::Gru, Backbone::Lstm] {
        let t = std::time::Instant::now();
        let mut model = RnnClassifier::with_backbone(cfg, backbone);
        model.train(&train_pairs);
        push(
            match backbone {
                Backbone::Gru => "RNN (GRU backbone)",
                Backbone::Lstm => "RNN (LSTM backbone)",
            },
            eval_rnn(&model, &test_pairs),
            t.elapsed().as_secs_f64(),
        );
    }

    print_table(
        "Ablation: model architectures on NVD+wild identification",
        &["Model", "Precision", "Recall", "F1", "train time"],
        &rows,
    );
    println!("\nexpected: token-level models beat count-feature models (the paper's");
    println!("RNN-vs-RF finding); GRU ≈ LSTM with GRU cheaper per step.");
    println!("\n[ablation_models completed in {:?}]", t0.elapsed());
}
