//! Perf trajectory for the nearest link search: the seed's sqrt-based
//! full-scan init pass vs the squared-distance, parallel, and pruned
//! variants at several `(M, N)`, plus the end-to-end pipeline build wall
//! time — written to `BENCH_nls.json` at the repo root so later PRs can
//! compare against this one.
//!
//! * `PATCHDB_BENCH_FAST=1` shrinks sizes and sampling for the CI smoke
//!   run (the JSON is still produced and must still parse).
//! * `PATCHDB_BENCH_NLS_JSON=<path>` overrides the output location.
//! * `PATCHDB_THREADS=<n>` steers the worker count of the parallel
//!   variants, as everywhere else.

use std::time::Instant;

use patchdb::{BuildOptions, PatchDb};
use patchdb_corpus::{CorpusConfig, GitHubForge};
use patchdb_features::{
    apply_weights, euclidean, extract, learn_weights, squared_euclidean, FeatureVector,
};
use patchdb_nls::{row_minima, NlsConfig};
use patchdb_rt::bench::{black_box, BenchmarkId, Criterion};
use patchdb_rt::json::{Json, ToJson};
use patchdb_rt::{obs, par};

/// Weighted feature vectors of real (forge-materialized) patches — the
/// exact population the pipeline's nearest link search runs on: cleaned
/// patches, Table I extraction, `1/max|a_j|` weighting over the pool.
/// Patch features cluster by patch size (heavy-tailed), which is the
/// structure the norm-bound pruning exploits; synthetic isotropic noise
/// would understate it badly.
fn corpus_features(count: usize, seed: u64) -> Vec<FeatureVector> {
    let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(count + count / 8, seed));
    let commits: Vec<_> = forge.all_commits().take(count).collect();
    assert_eq!(commits.len(), count, "forge too small for requested feature count");
    let threads = par::configured_threads(16);
    let raw = par::map_chunked(&commits, threads, |(_, c)| {
        let change = forge.materialize(c);
        let patch = change.patch.retain_c_files().unwrap_or(change.patch);
        extract(&patch, None)
    });
    let weights = learn_weights(raw.iter());
    par::map_chunked(&raw, threads, |v| apply_weights(v, &weights))
}

/// A faithful replica of the seed's init pass — per-row full scan with a
/// `sqrt` per pair — kept here as the fixed baseline the speedup in
/// `BENCH_nls.json` is measured against.
fn seed_init_pass(security: &[FeatureVector], wild: &[FeatureVector]) -> (Vec<f64>, Vec<usize>) {
    let mut u = vec![f64::INFINITY; security.len()];
    let mut v = vec![0usize; security.len()];
    for (m, sec) in security.iter().enumerate() {
        for (n, w) in wild.iter().enumerate() {
            let d = euclidean(sec, w);
            if d < u[m] {
                u[m] = d;
                v[m] = n;
            }
        }
    }
    (u, v)
}

/// A bare, uninstrumented replica of what `row_minima` runs with the
/// `serial-squared` config — the same plain scan, candidate-list push
/// (lexicographic k-best at k = 1), and mask branch as the pre-obs
/// production loop, minus the `obs::enabled()` check and the
/// monomorphized probe plumbing. The gap between this and
/// `serial-squared` is the obs-off cost of the instrumentation alone
/// (`obs.off_overhead_pct` in BENCH_nls.json), which the `NoProbe`
/// design is meant to keep near zero.
fn bare_init_pass(security: &[FeatureVector], wild: &[FeatureVector]) -> (Vec<f64>, Vec<usize>) {
    let used: Option<&[bool]> = None;
    let lists: Vec<Vec<(f64, usize)>> = security
        .iter()
        .map(|sec| {
            let mut list: Vec<(f64, usize)> = Vec::with_capacity(1);
            for (n, w) in wild.iter().enumerate() {
                if used.is_some_and(|u| u[n]) {
                    continue;
                }
                let d2 = squared_euclidean(sec, w);
                if let Some(&(ld, li)) = list.first() {
                    if d2 < ld || (d2 == ld && n < li) {
                        list[0] = (d2, n);
                    }
                } else {
                    list.push((d2, n));
                }
            }
            list
        })
        .collect();
    lists.iter().map(|l| (l[0].0, l[0].1)).unzip()
}

fn sizes() -> Vec<(usize, usize)> {
    if std::env::var_os("PATCHDB_BENCH_FAST").is_some() {
        vec![(8, 150), (16, 400)]
    } else {
        vec![(50, 2_000), (100, 8_000), (200, 20_000)]
    }
}

fn bench_init_pass(c: &mut Criterion, sizes: &[(usize, usize)], threads: usize) {
    // One feature pool sized for the largest instance, sliced per size:
    // security rows from the front, wild rows from the back.
    let (max_m, max_n) = *sizes.last().expect("at least one size");
    let pool = corpus_features(max_m + max_n, 41);
    let mut g = c.benchmark_group("nls-init");
    for &(m, n) in sizes {
        let sec = &pool[..m];
        let wild = &pool[pool.len() - n..];
        let shape = format!("{m}x{n}");

        // Sanity: every variant must agree with the seed baseline on the
        // argmin columns before we bother timing it.
        let (_, seed_v) = seed_init_pass(&sec, &wild);
        let configs = [
            ("serial-squared", NlsConfig { threads: 1, prune: false, k_best: 1 }),
            ("parallel", NlsConfig { threads, prune: false, k_best: 8 }),
            ("pruned", NlsConfig { threads: 1, prune: true, k_best: 8 }),
            ("parallel-pruned", NlsConfig { threads, prune: true, k_best: 8 }),
        ];
        for (name, cfg) in &configs {
            let (_, v) = row_minima(&sec, &wild, cfg);
            assert_eq!(seed_v, v, "{name} drifted from the seed baseline at {shape}");
        }

        let (_, bare_v) = bare_init_pass(&sec, &wild);
        assert_eq!(seed_v, bare_v, "bare replica drifted from the seed baseline at {shape}");

        g.bench_with_input(BenchmarkId::new("seed-baseline", &shape), &(), |b, ()| {
            b.iter(|| black_box(seed_init_pass(&sec, &wild)))
        });
        // The instrumentation-cost pair: a bare uninstrumented scan vs the
        // same scan through the probe-generic production path (obs off).
        g.bench_with_input(BenchmarkId::new("serial-bare", &shape), &(), |b, ()| {
            b.iter(|| black_box(bare_init_pass(&sec, &wild)))
        });
        for (name, cfg) in &configs {
            g.bench_with_input(BenchmarkId::new(*name, &shape), &(), |b, ()| {
                b.iter(|| black_box(row_minima(&sec, &wild, cfg)))
            });
        }
        // The toggle-cost pair: the serial pruned scan re-timed with
        // tracing on. `row_minima` banks counters but opens no spans, so
        // repeated iterations don't grow the registry.
        let pruned_cfg = &configs[2].1;
        assert!(pruned_cfg.prune && pruned_cfg.threads == 1, "configs[2] must be `pruned`");
        g.bench_with_input(BenchmarkId::new("pruned-traced", &shape), &(), |b, ()| {
            obs::set_enabled(true);
            obs::reset();
            b.iter(|| black_box(row_minima(&sec, &wild, pruned_cfg)));
            obs::set_enabled(false);
        });
    }
    g.finish();
}

/// End-to-end pipeline build wall time (one measurement — the build is
/// seconds-scale and deterministic, a median over repeats buys little).
fn pipeline_build_ms() -> f64 {
    let fast = std::env::var_os("PATCHDB_BENCH_FAST").is_some();
    let options = if fast {
        BuildOptions::tiny(7)
    } else {
        patchdb_bench::bench_options(7).synthesize(true)
    };
    let start = Instant::now();
    let report = PatchDb::build(&options);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    black_box(report.db.stats());
    elapsed
}

fn write_report(
    c: &Criterion,
    sizes: &[(usize, usize)],
    threads: usize,
    build_ms: f64,
) {
    let largest = *sizes.last().expect("at least one size");
    let shape = format!("{}x{}", largest.0, largest.1);
    let median_of = |name: &str| {
        c.results()
            .iter()
            .find(|r| r.name == format!("nls-init/{name}/{shape}"))
            .map(|r| r.median_ns)
    };
    let speedup = match (median_of("seed-baseline"), median_of("parallel-pruned")) {
        (Some(base), Some(fast)) if fast > 0.0 => base / fast,
        _ => 0.0,
    };

    // Observability cost at the largest shape. `off_overhead_pct` is the
    // probe-generic production path (tracing off) against a bare
    // uninstrumented replica of the same scan — the number the ISSUE
    // requires to stay under 2%. `on_overhead_pct` is what flipping
    // PATCHDB_TRACE=1 costs on the serial pruned init pass.
    let overhead_pct = |with: Option<f64>, without: Option<f64>| match (with, without) {
        (Some(w), Some(wo)) if wo > 0.0 => 100.0 * (w - wo) / wo,
        _ => 0.0,
    };
    let obs_json = Json::Obj(vec![
        ("bare_median_ns".into(), Json::Num(median_of("serial-bare").unwrap_or(0.0))),
        ("off_median_ns".into(), Json::Num(median_of("serial-squared").unwrap_or(0.0))),
        (
            "off_overhead_pct".into(),
            Json::Num(overhead_pct(median_of("serial-squared"), median_of("serial-bare"))),
        ),
        ("on_median_ns".into(), Json::Num(median_of("pruned-traced").unwrap_or(0.0))),
        (
            "on_overhead_pct".into(),
            Json::Num(overhead_pct(median_of("pruned-traced"), median_of("pruned"))),
        ),
    ]);

    let json = Json::Obj(vec![
        ("schema".into(), Json::Str("patchdb-bench-nls/v1".into())),
        (
            "fast_mode".into(),
            Json::Bool(std::env::var_os("PATCHDB_BENCH_FAST").is_some()),
        ),
        ("threads".into(), Json::Num(threads as f64)),
        (
            "sizes".into(),
            Json::Arr(
                sizes
                    .iter()
                    .map(|&(m, n)| Json::Arr(vec![Json::Num(m as f64), Json::Num(n as f64)]))
                    .collect(),
            ),
        ),
        ("init_speedup_largest".into(), Json::Num(speedup)),
        ("obs".into(), obs_json),
        ("pipeline_build_ms".into(), Json::Num(build_ms)),
        (
            "results".into(),
            Json::Arr(c.results().iter().map(|r| r.to_json()).collect()),
        ),
    ]);

    let path = std::env::var("PATCHDB_BENCH_NLS_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nls.json").to_owned()
    });
    std::fs::write(&path, json.to_pretty_string() + "\n").expect("write BENCH_nls.json");
    println!("\nwrote {path} (init speedup at {shape}: {speedup:.2}x)");
    println!(
        "obs cost at {shape}: off {:+.2}% vs bare, on {:+.2}% vs off",
        overhead_pct(median_of("serial-squared"), median_of("serial-bare")),
        overhead_pct(median_of("pruned-traced"), median_of("pruned")),
    );
}

fn main() {
    let sizes = sizes();
    let threads = patchdb_rt::par::configured_threads(16);
    let mut c = Criterion::default();
    bench_init_pass(&mut c, &sizes, threads);
    let build_ms = pipeline_build_ms();
    println!("pipeline build: {build_ms:.0} ms");
    write_report(&c, &sizes, threads, build_ms);
}
