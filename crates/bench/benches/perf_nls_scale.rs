//! Perf trajectory for the nearest link search: the seed's sqrt-based
//! full-scan init pass vs the squared-distance, parallel, pruned, and
//! indexed (partitioned / quantized) variants at several `(M, N)`, plus
//! an XL size class and the end-to-end pipeline build wall time —
//! written to `BENCH_nls.json` at the repo root so later PRs can
//! compare against this one.
//!
//! * `PATCHDB_BENCH_FAST=1` shrinks sizes and sampling for the CI smoke
//!   run (the JSON is still produced and must still parse).
//! * `PATCHDB_BENCH_NLS_JSON=<path>` overrides the output location.
//! * `PATCHDB_THREADS=<n>` steers the worker count of the parallel
//!   variants, as everywhere else.
//!
//! The index variants are measured in two pieces — `*-build` (one-time
//! partition/quantizer construction, amortized across augmentation
//! rounds, which reuse the index) and `*-query` (the per-sweep scan the
//! rounds actually repeat) — and `speedup_vs_seed` compares the query
//! piece against the seed baseline at the same shape, single-threaded
//! on both sides. Every variant is asserted byte-identical to the seed
//! argmin before it is timed.

use std::time::{Duration, Instant};

use patchdb::{BuildOptions, PatchDb};
use patchdb_corpus::{CorpusConfig, GitHubForge};
use patchdb_features::{
    apply_weights, euclidean, extract, learn_weights, squared_euclidean, FeatureVector,
};
use patchdb_nls::{row_minima, row_minima_indexed, IndexMode, NlsConfig, WildIndex};
use patchdb_rt::bench::{black_box, BenchResult, BenchmarkId, Criterion};
use patchdb_rt::json::{Json, ToJson};
use patchdb_rt::{obs, par};

/// Weighted feature vectors of real (forge-materialized) patches — the
/// exact population the pipeline's nearest link search runs on: cleaned
/// patches, Table I extraction, `1/max|a_j|` weighting over the pool.
/// Patch features cluster by patch size (heavy-tailed), which is the
/// structure the norm-bound pruning and the k-means partition exploit;
/// synthetic isotropic noise would understate both badly.
fn corpus_features(count: usize, seed: u64) -> Vec<FeatureVector> {
    let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(count + count / 8, seed));
    let commits: Vec<_> = forge.all_commits().take(count).collect();
    assert_eq!(commits.len(), count, "forge too small for requested feature count");
    let threads = par::configured_threads(16);
    let raw = par::map_chunked(&commits, threads, |(_, c)| {
        let change = forge.materialize(c);
        let patch = change.patch.retain_c_files().unwrap_or(change.patch);
        extract(&patch, None)
    });
    let weights = learn_weights(raw.iter());
    par::map_chunked(&raw, threads, |v| apply_weights(v, &weights))
}

/// A faithful replica of the seed's init pass — per-row full scan with a
/// `sqrt` per pair — kept here as the fixed baseline the speedups in
/// `BENCH_nls.json` are measured against.
fn seed_init_pass(security: &[FeatureVector], wild: &[FeatureVector]) -> (Vec<f64>, Vec<usize>) {
    let mut u = vec![f64::INFINITY; security.len()];
    let mut v = vec![0usize; security.len()];
    for (m, sec) in security.iter().enumerate() {
        for (n, w) in wild.iter().enumerate() {
            let d = euclidean(sec, w);
            if d < u[m] {
                u[m] = d;
                v[m] = n;
            }
        }
    }
    (u, v)
}

/// A bare, uninstrumented replica of what `row_minima` runs with the
/// `serial-squared` config — the same plain scan, candidate-list push
/// (lexicographic k-best at k = 1), and mask branch as the pre-obs
/// production loop, minus the `obs::enabled()` check and the
/// monomorphized probe plumbing. The gap between this and
/// `serial-squared` is the obs-off cost of the instrumentation alone
/// (`obs.off_overhead_pct` in BENCH_nls.json), which the `NoProbe`
/// design is meant to keep near zero.
fn bare_init_pass(security: &[FeatureVector], wild: &[FeatureVector]) -> (Vec<f64>, Vec<usize>) {
    let used: Option<&[bool]> = None;
    let lists: Vec<Vec<(f64, usize)>> = security
        .iter()
        .map(|sec| {
            let mut list: Vec<(f64, usize)> = Vec::with_capacity(1);
            for (n, w) in wild.iter().enumerate() {
                if used.is_some_and(|u| u[n]) {
                    continue;
                }
                let d2 = squared_euclidean(sec, w);
                if let Some(&(ld, li)) = list.first() {
                    if d2 < ld || (d2 == ld && n < li) {
                        list[0] = (d2, n);
                    }
                } else {
                    list.push((d2, n));
                }
            }
            list
        })
        .collect();
    lists.iter().map(|l| (l[0].0, l[0].1)).unzip()
}

fn fast_mode() -> bool {
    std::env::var_os("PATCHDB_BENCH_FAST").is_some()
}

fn sizes() -> Vec<(usize, usize)> {
    if fast_mode() {
        vec![(8, 150), (16, 400)]
    } else {
        vec![(50, 2_000), (100, 8_000), (200, 20_000)]
    }
}

/// The XL size class: an order of magnitude beyond the largest standard
/// shape on both axes, where the sublinear index separates decisively
/// from every flavor of linear scan. Kept out of `sizes()` because the
/// seed baseline takes tens of seconds per iteration here — it gets its
/// own low-sample `Criterion`.
fn xl_size() -> (usize, usize) {
    if fast_mode() {
        (40, 4_000)
    } else {
        (2_000, 200_000)
    }
}

/// The two index variants measured at every shape: single-threaded,
/// argmin (`k_best = 1`) so the comparison against the single-threaded
/// seed baseline is one knob, auto cells (`√N`) and auto probes.
fn index_configs() -> [(&'static str, NlsConfig); 2] {
    let base = NlsConfig {
        threads: 1,
        prune: true,
        k_best: 1,
        index: IndexMode::Partitioned,
        cells: 0,
        probes: 0,
    };
    [
        ("partitioned", base.clone()),
        ("quantized", NlsConfig { index: IndexMode::Quantized, ..base }),
    ]
}

fn bench_init_pass(c: &mut Criterion, sizes: &[(usize, usize)], threads: usize) {
    // One feature pool sized for the largest instance, sliced per size:
    // security rows from the front, wild rows from the back.
    let (max_m, max_n) = *sizes.last().expect("at least one size");
    let pool = corpus_features(max_m + max_n, 41);
    let mut g = c.benchmark_group("nls-init");
    for &(m, n) in sizes {
        let sec = &pool[..m];
        let wild = &pool[pool.len() - n..];
        let shape = format!("{m}x{n}");

        // Sanity: every variant must agree with the seed baseline on the
        // argmin columns before we bother timing it.
        let (_, seed_v) = seed_init_pass(sec, wild);
        let configs = [
            ("serial-squared", NlsConfig { threads: 1, prune: false, k_best: 1, ..NlsConfig::serial() }),
            ("parallel", NlsConfig { threads, prune: false, k_best: 8, ..NlsConfig::serial() }),
            ("pruned", NlsConfig { threads: 1, prune: true, k_best: 8, ..NlsConfig::serial() }),
            ("parallel-pruned", NlsConfig { threads, prune: true, k_best: 8, ..NlsConfig::serial() }),
        ];
        for (name, cfg) in &configs {
            let (_, v) = row_minima(sec, wild, cfg);
            assert_eq!(seed_v, v, "{name} drifted from the seed baseline at {shape}");
        }

        let (_, bare_v) = bare_init_pass(sec, wild);
        assert_eq!(seed_v, bare_v, "bare replica drifted from the seed baseline at {shape}");

        g.bench_with_input(BenchmarkId::new("seed-baseline", &shape), &(), |b, ()| {
            b.iter(|| black_box(seed_init_pass(sec, wild)))
        });
        // The instrumentation-cost pair: a bare uninstrumented scan vs the
        // same scan through the probe-generic production path (obs off).
        g.bench_with_input(BenchmarkId::new("serial-bare", &shape), &(), |b, ()| {
            b.iter(|| black_box(bare_init_pass(sec, wild)))
        });
        for (name, cfg) in &configs {
            g.bench_with_input(BenchmarkId::new(*name, &shape), &(), |b, ()| {
                b.iter(|| black_box(row_minima(sec, wild, cfg)))
            });
        }
        // The toggle-cost pair: the serial pruned scan re-timed with
        // tracing on. `row_minima` banks counters but opens no spans, so
        // repeated iterations don't grow the registry.
        let pruned_cfg = &configs[2].1;
        assert!(pruned_cfg.prune && pruned_cfg.threads == 1, "configs[2] must be `pruned`");
        g.bench_with_input(BenchmarkId::new("pruned-traced", &shape), &(), |b, ()| {
            obs::set_enabled(true);
            obs::reset();
            b.iter(|| black_box(row_minima(sec, wild, pruned_cfg)));
            obs::set_enabled(false);
        });

        // The index variants: one-time build and the repeated query
        // sweep, separately.
        for (name, cfg) in index_configs() {
            let ix = WildIndex::build(wild, &cfg);
            let (_, v) = row_minima_indexed(sec, wild, &cfg, &ix);
            assert_eq!(seed_v, v, "{name} index drifted from the seed baseline at {shape}");
            g.bench_with_input(BenchmarkId::new(format!("{name}-build"), &shape), &(), |b, ()| {
                b.iter(|| black_box(WildIndex::build(wild, &cfg)))
            });
            g.bench_with_input(BenchmarkId::new(format!("{name}-query"), &shape), &(), |b, ()| {
                b.iter(|| black_box(row_minima_indexed(sec, wild, &cfg, &ix)))
            });
        }
    }
    g.finish();
}

/// The XL class on its own `Criterion`: two samples, no warmup — the
/// seed baseline alone is tens of seconds per iteration, and the index
/// numbers it anchors are tens of milliseconds, so medians of a cheap
/// sample count carry all the signal the speedup ratio needs.
fn bench_xl(xc: &mut Criterion) {
    let (m, n) = xl_size();
    let pool = corpus_features(m + n, 43);
    let sec = &pool[..m];
    let wild = &pool[pool.len() - n..];
    let shape = format!("{m}x{n}");

    // Identity at this scale is anchored through the pruned scan (itself
    // asserted against the seed replica at every standard shape) — the
    // seed replica is only *timed* here, not re-run an extra time.
    let pruned = NlsConfig { threads: 1, prune: true, k_best: 1, ..NlsConfig::serial() };
    let (_, ref_v) = row_minima(sec, wild, &pruned);

    let mut g = xc.benchmark_group("nls-xl");
    g.bench_with_input(BenchmarkId::new("seed-baseline", &shape), &(), |b, ()| {
        b.iter(|| black_box(seed_init_pass(sec, wild)))
    });
    for (name, cfg) in index_configs() {
        let ix = WildIndex::build(wild, &cfg);
        let (_, v) = row_minima_indexed(sec, wild, &cfg, &ix);
        assert_eq!(ref_v, v, "{name} index drifted from the pruned scan at {shape}");
        g.bench_with_input(BenchmarkId::new(format!("{name}-build"), &shape), &(), |b, ()| {
            b.iter(|| black_box(WildIndex::build(wild, &cfg)))
        });
        g.bench_with_input(BenchmarkId::new(format!("{name}-query"), &shape), &(), |b, ()| {
            b.iter(|| black_box(row_minima_indexed(sec, wild, &cfg, &ix)))
        });
    }
    g.finish();
}

/// End-to-end pipeline build wall time (one measurement — the build is
/// seconds-scale and deterministic, a median over repeats buys little).
fn pipeline_build_ms() -> f64 {
    let options = if fast_mode() {
        BuildOptions::tiny(7)
    } else {
        patchdb_bench::bench_options(7).synthesize(true)
    };
    let start = Instant::now();
    let report = PatchDb::build(&options);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    black_box(report.db.stats());
    elapsed
}

fn write_report(
    results: &[&BenchResult],
    sizes: &[(usize, usize)],
    threads: usize,
    build_ms: f64,
) {
    let largest = *sizes.last().expect("at least one size");
    let shape = format!("{}x{}", largest.0, largest.1);
    let median_of = |group: &str, name: &str, shape: &str| {
        results
            .iter()
            .find(|r| r.name == format!("{group}/{name}/{shape}"))
            .map(|r| r.median_ns)
    };
    let speedup = match (
        median_of("nls-init", "seed-baseline", &shape),
        median_of("nls-init", "parallel-pruned", &shape),
    ) {
        (Some(base), Some(fast)) if fast > 0.0 => base / fast,
        _ => 0.0,
    };

    // Observability cost at the largest shape. `off_overhead_pct` is the
    // probe-generic production path (tracing off) against a bare
    // uninstrumented replica of the same scan. `on_overhead_pct` is what
    // flipping PATCHDB_TRACE=1 costs on the serial pruned init pass.
    let overhead_pct = |with: Option<f64>, without: Option<f64>| match (with, without) {
        (Some(w), Some(wo)) if wo > 0.0 => 100.0 * (w - wo) / wo,
        _ => 0.0,
    };
    let obs_json = Json::Obj(vec![
        (
            "bare_median_ns".into(),
            Json::Num(median_of("nls-init", "serial-bare", &shape).unwrap_or(0.0)),
        ),
        (
            "off_median_ns".into(),
            Json::Num(median_of("nls-init", "serial-squared", &shape).unwrap_or(0.0)),
        ),
        (
            "off_overhead_pct".into(),
            Json::Num(overhead_pct(
                median_of("nls-init", "serial-squared", &shape),
                median_of("nls-init", "serial-bare", &shape),
            )),
        ),
        (
            "on_median_ns".into(),
            Json::Num(median_of("nls-init", "pruned-traced", &shape).unwrap_or(0.0)),
        ),
        (
            "on_overhead_pct".into(),
            Json::Num(overhead_pct(
                median_of("nls-init", "pruned-traced", &shape),
                median_of("nls-init", "pruned", &shape),
            )),
        ),
    ]);

    // The index block: per (mode, shape) build/query medians and the
    // query speedup against the seed baseline at the same shape. The XL
    // class rides in the same array under its own shape string.
    let xl = xl_size();
    let xl_shape = format!("{}x{}", xl.0, xl.1);
    let mut mode_entries: Vec<Json> = Vec::new();
    let mut index_speedup_largest = 0.0f64;
    let mut xl_speedup = 0.0f64;
    for (group, entry_shape) in
        [("nls-init", shape.as_str()), ("nls-xl", xl_shape.as_str())]
    {
        let seed = median_of(group, "seed-baseline", entry_shape);
        for (mode, _) in index_configs() {
            let build = median_of(group, &format!("{mode}-build"), entry_shape);
            let query = median_of(group, &format!("{mode}-query"), entry_shape);
            let speedup = match (seed, query) {
                (Some(s), Some(q)) if q > 0.0 => s / q,
                _ => 0.0,
            };
            if entry_shape == shape {
                index_speedup_largest = index_speedup_largest.max(speedup);
            } else {
                xl_speedup = xl_speedup.max(speedup);
            }
            mode_entries.push(Json::Obj(vec![
                ("mode".into(), Json::Str(mode.into())),
                ("shape".into(), Json::Str(entry_shape.into())),
                ("build_median_ns".into(), Json::Num(build.unwrap_or(0.0))),
                ("query_median_ns".into(), Json::Num(query.unwrap_or(0.0))),
                ("speedup_vs_seed".into(), Json::Num(speedup)),
            ]));
        }
    }
    let index_json = Json::Obj(vec![
        ("modes".into(), Json::Arr(mode_entries)),
        ("index_speedup_largest".into(), Json::Num(index_speedup_largest)),
        ("xl_shape".into(), Json::Str(xl_shape.clone())),
        ("xl_speedup".into(), Json::Num(xl_speedup)),
    ]);

    let json = Json::Obj(vec![
        ("schema".into(), Json::Str("patchdb-bench-nls/v2".into())),
        ("fast_mode".into(), Json::Bool(fast_mode())),
        ("threads".into(), Json::Num(threads as f64)),
        (
            "sizes".into(),
            Json::Arr(
                sizes
                    .iter()
                    .map(|&(m, n)| Json::Arr(vec![Json::Num(m as f64), Json::Num(n as f64)]))
                    .collect(),
            ),
        ),
        ("init_speedup_largest".into(), Json::Num(speedup)),
        ("index".into(), index_json),
        ("obs".into(), obs_json),
        ("pipeline_build_ms".into(), Json::Num(build_ms)),
        (
            "results".into(),
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        ),
    ]);

    let path = std::env::var("PATCHDB_BENCH_NLS_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nls.json").to_owned()
    });
    std::fs::write(&path, json.to_pretty_string() + "\n").expect("write BENCH_nls.json");
    println!("\nwrote {path}");
    println!("init speedup at {shape}: {speedup:.2}x (parallel-pruned vs seed)");
    println!("index speedup at {shape}: {index_speedup_largest:.2}x (best mode query vs seed)");
    println!("index speedup at {xl_shape}: {xl_speedup:.2}x (best mode query vs seed)");
    println!(
        "obs cost at {shape}: off {:+.2}% vs bare, on {:+.2}% vs off",
        overhead_pct(
            median_of("nls-init", "serial-squared", &shape),
            median_of("nls-init", "serial-bare", &shape)
        ),
        overhead_pct(
            median_of("nls-init", "pruned-traced", &shape),
            median_of("nls-init", "pruned", &shape)
        ),
    );
}

fn main() {
    let sizes = sizes();
    let threads = patchdb_rt::par::configured_threads(16);
    let mut c = Criterion::default();
    bench_init_pass(&mut c, &sizes, threads);
    let mut xc = Criterion::default().sample_size(3).warm_up_time(Duration::ZERO);
    bench_xl(&mut xc);
    let build_ms = pipeline_build_ms();
    println!("pipeline build: {build_ms:.0} ms");
    let results: Vec<&BenchResult> = c.results().iter().chain(xc.results().iter()).collect();
    write_report(&results, &sizes, threads, build_ms);
}
