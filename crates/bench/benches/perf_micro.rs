//! Criterion micro-benchmarks for the core algorithmic components:
//! lexing, feature extraction, Levenshtein, Myers diff, nearest link
//! search (matrix-free vs explicit-matrix ablation), random-forest
//! training, GRU steps, and the oversampler.

use patchdb_rt::bench::{black_box, BenchmarkId, Criterion};
use patchdb_rt::{criterion_group, criterion_main};
use patchdb_rt::rng::Xoshiro256pp;

use patchdb_corpus::{ChangeKind, CorpusConfig, GitHubForge};
use patchdb_features::{extract, euclidean, levenshtein, FeatureVector};
use patchdb_ml::{Classifier, Dataset, RandomForest};
use patchdb_nls::{nearest_link_search, nearest_link_search_matrix};
use patchdb_synth::{synthesize, SynthOptions};

fn sample_changes(n: usize) -> Vec<patchdb_corpus::GeneratedChange> {
    let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(n * 2, 3));
    forge
        .all_commits()
        .take(n)
        .map(|(_, c)| forge.materialize(c))
        .collect()
}

fn bench_lexer(c: &mut Criterion) {
    let changes = sample_changes(16);
    let sources: Vec<String> =
        changes.iter().flat_map(|ch| ch.after_files.values().cloned()).collect();
    let bytes: usize = sources.iter().map(String::len).sum();
    let mut g = c.benchmark_group("clang-lite");
    g.throughput(patchdb_rt::bench::Throughput::Bytes(bytes as u64));
    g.bench_function("tokenize", |b| {
        b.iter(|| {
            for s in &sources {
                black_box(clang_lite::tokenize(s));
            }
        })
    });
    g.bench_function("find_if_statements", |b| {
        b.iter(|| {
            for s in &sources {
                black_box(clang_lite::find_if_statements(s));
            }
        })
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let changes = sample_changes(64);
    c.bench_function("features/extract-60d", |b| {
        b.iter(|| {
            for ch in &changes {
                black_box(extract(&ch.patch, None));
            }
        })
    });
}

fn bench_levenshtein(c: &mut Criterion) {
    let a: Vec<u32> = (0..200).map(|i| i % 17).collect();
    let bv: Vec<u32> = (0..220).map(|i| (i * 7) % 17).collect();
    c.bench_function("levenshtein/200x220", |b| {
        b.iter(|| black_box(levenshtein(&a, &bv)))
    });
}

fn bench_myers(c: &mut Criterion) {
    let changes = sample_changes(16);
    c.bench_function("myers/diff_files", |b| {
        b.iter(|| {
            for ch in &changes {
                for (path, before) in &ch.before_files {
                    if let Some(after) = ch.after_files.get(path) {
                        black_box(patch_core::diff_files(path, before, after, 3));
                    }
                }
            }
        })
    });
}

fn random_features(n: usize, rng: &mut Xoshiro256pp) -> Vec<FeatureVector> {
    (0..n)
        .map(|_| {
            let mut v = FeatureVector::zero();
            for x in v.as_mut_slice().iter_mut().take(12) {
                *x = rng.gen_range(-1.0..1.0);
            }
            v
        })
        .collect()
}

fn bench_nls(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let mut g = c.benchmark_group("nearest-link-search");
    for (m, n) in [(50usize, 1000usize), (100, 4000), (200, 8000)] {
        let sec = random_features(m, &mut rng);
        let wild = random_features(n, &mut rng);
        g.bench_with_input(BenchmarkId::new("matrix-free", format!("{m}x{n}")), &(), |b, ()| {
            b.iter(|| black_box(nearest_link_search(&sec, &wild)))
        });
        // Ablation: explicit matrix (memory-heavy) variant.
        if m * n <= 800_000 {
            let matrix: Vec<Vec<f64>> = sec
                .iter()
                .map(|s| wild.iter().map(|w| euclidean(s, w)).collect())
                .collect();
            g.bench_with_input(BenchmarkId::new("explicit-matrix", format!("{m}x{n}")), &(), |b, ()| {
                b.iter(|| black_box(nearest_link_search_matrix(&matrix)))
            });
        }
    }
    g.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let rows: Vec<Vec<f64>> =
        (0..2000).map(|_| (0..60).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
    let labels: Vec<bool> = rows.iter().map(|r| r[0] + r[1] > 0.0).collect();
    let data = Dataset::new(rows, labels).unwrap();
    c.bench_function("random-forest/fit-2000x60", |b| {
        b.iter(|| {
            let mut rf = RandomForest::new(16, 8, 1);
            rf.fit(&data);
            black_box(rf.tree_count())
        })
    });
}

fn bench_gru(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let cell = patchdb_nn::GruCell::new(24, 32, &mut rng);
    let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).sin()).collect();
    let h = vec![0.0; 32];
    c.bench_function("gru/forward-step", |b| {
        b.iter(|| black_box(cell.forward(&x, &h)))
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let changes: Vec<_> = sample_changes(64)
        .into_iter()
        .filter(|ch| matches!(ch.kind, ChangeKind::Security(_)))
        .collect();
    let opts = SynthOptions::default();
    c.bench_function("oversample/security-patches", |b| {
        b.iter(|| {
            for ch in &changes {
                black_box(synthesize(&ch.patch, &ch.before_files, &ch.after_files, &opts));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lexer, bench_features, bench_levenshtein, bench_myers,
              bench_nls, bench_forest, bench_gru, bench_synthesis
}
criterion_main!(benches);
