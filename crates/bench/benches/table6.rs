//! Table VI — "Impacts of datasets over learning-based models":
//! Random Forest (statistical features) and RNN (token stream), trained on
//! the NVD-based dataset alone vs NVD+wild, tested on NVD and wild test
//! splits.
//!
//! Paper:
//!
//! | Train     | Model | Test | Precision | Recall |
//! |-----------|-------|------|-----------|--------|
//! | NVD       | RF    | NVD  | 58.4%     | 21.7%  |
//! | NVD       | RF    | Wild | 58.0%     | 19.5%  |
//! | NVD       | RNN   | NVD  | 82.8%     | 83.2%  |
//! | NVD       | RNN   | Wild | 88.3%     | 24.2%  |
//! | NVD+Wild  | RF    | NVD  | 90.1%     | 22.5%  |
//! | NVD+Wild  | RF    | Wild | 91.8%     | 44.6%  |
//! | NVD+Wild  | RNN   | NVD  | 92.8%     | 60.2%  |
//! | NVD+Wild  | RNN   | Wild | 92.3%     | 63.2%  |
//!
//! Expected shape here: (a) NVD-only models generalize poorly to the wild
//! test set (recall gap); (b) adding the wild training data stabilizes
//! performance across both test sets; (c) the RNN beats the RF.

use patchdb::PatchRecord;
use patchdb_bench::{
    build_experiment, build_vocab, features_dataset, print_table, rnn_pairs, split_records,
};
use patchdb_ml::{evaluate, Classifier, ConfusionMatrix, Metrics, RandomForest};
use patchdb_nn::{RnnClassifier, RnnConfig, TokenSequence};

fn main() {
    let t0 = std::time::Instant::now();
    let report = build_experiment(707, false);
    let db = &report.db;
    println!("dataset: {}", db.stats());

    // Positives per source; negatives from the cleaned non-security set,
    // partitioned between the two sources.
    let nvd_pos: Vec<&PatchRecord> = db.nvd.iter().collect();
    let wild_pos: Vec<&PatchRecord> = db.wild.iter().collect();
    let negs: Vec<&PatchRecord> = db.non_security.iter().collect();
    let cut = (negs.len() / 3).max(2 * nvd_pos.len()).min(negs.len());
    let nvd_neg: Vec<&PatchRecord> = negs[..cut].to_vec();
    let wild_neg: Vec<&PatchRecord> = negs[cut..].to_vec();

    // 80/20 splits per source (paper protocol).
    let (nvd_pos_tr, nvd_pos_te) = split_records(&nvd_pos, 0.8, 1);
    let (nvd_neg_tr, nvd_neg_te) = split_records(&nvd_neg, 0.8, 2);
    let (wild_pos_tr, wild_pos_te) = split_records(&wild_pos, 0.8, 3);
    let (wild_neg_tr, wild_neg_te) = split_records(&wild_neg, 0.8, 4);

    let vocab = build_vocab(
        db.security_patches().map(|r| &r.patch).chain(negs.iter().map(|r| &r.patch)),
        4096,
    );

    let rnn_cfg = RnnConfig {
        vocab_size: vocab.size().max(64),
        embed_dim: 24,
        hidden_dim: 32,
        epochs: 5,
        lr: 5e-3,
        max_len: 160,
        seed: 9,
    };

    let eval_rnn = |model: &RnnClassifier, test: &[(TokenSequence, bool)]| -> Metrics {
        let mut cm = ConfusionMatrix::default();
        for (seq, label) in test {
            cm.record(model.predict(seq), *label);
        }
        Metrics::new(cm)
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |train: &str, algo: &str, test: &str, m: Metrics| {
        rows.push(vec![
            train.into(),
            algo.into(),
            test.into(),
            format!("{:.1}%", 100.0 * m.precision()),
            format!("{:.1}%", 100.0 * m.recall()),
        ]);
    };

    for (train_name, pos_tr, neg_tr) in [
        ("NVD", nvd_pos_tr.clone(), nvd_neg_tr.clone()),
        (
            "NVD+Wild",
            [nvd_pos_tr.clone(), wild_pos_tr.clone()].concat(),
            [nvd_neg_tr.clone(), wild_neg_tr.clone()].concat(),
        ),
    ] {
        // Random Forest on the 60 statistical features.
        let train_ds = features_dataset(&pos_tr, &neg_tr);
        let mut rf = RandomForest::new(32, 12, 100);
        rf.fit(&train_ds);
        let nvd_test = features_dataset(&nvd_pos_te, &nvd_neg_te);
        let wild_test = features_dataset(&wild_pos_te, &wild_neg_te);
        push(train_name, "Random Forest", "NVD", evaluate(&rf, &nvd_test));
        push(train_name, "Random Forest", "Wild", evaluate(&rf, &wild_test));

        // RNN on the token stream.
        let train_pairs = rnn_pairs(&vocab, &pos_tr, &neg_tr);
        let mut rnn = RnnClassifier::new(rnn_cfg);
        rnn.train(&train_pairs);
        let nvd_pairs = rnn_pairs(&vocab, &nvd_pos_te, &nvd_neg_te);
        let wild_pairs = rnn_pairs(&vocab, &wild_pos_te, &wild_neg_te);
        push(train_name, "RNN", "NVD", eval_rnn(&rnn, &nvd_pairs));
        push(train_name, "RNN", "Wild", eval_rnn(&rnn, &wild_pairs));
    }

    print_table(
        "Table VI: impacts of datasets over learning-based models",
        &["Training Dataset", "Algorithm", "Test Dataset", "Precision", "Recall"],
        &rows,
    );
    println!("\npaper shape: NVD-only models drop sharply on the wild test set;");
    println!("NVD+Wild training is stable across both; RNN ≥ Random Forest.");
    println!("\n[table6 completed in {:?}]", t0.elapsed());
}
