//! # patchdb-features
//!
//! The 60-dimensional syntactic feature space of PatchDB's Table I,
//! extracted directly from patches (which are not complete program units),
//! plus the weighting scheme of Section III-B-2:
//! `a'_ij = a_ij / max|a_j|`, mapping every dimension into `[-1, 1]` while
//! preserving the sign of net-value features.
//!
//! ```rust
//! use patch_core::{diff_files, Patch};
//! use patchdb_features::{extract, FeatureVector, FEATURE_DIM};
//!
//! let before = "int f(int a) {\n  return a;\n}\n";
//! let after  = "int f(int a) {\n  if (a < 0)\n    return 0;\n  return a;\n}\n";
//! let patch = Patch::builder("0".repeat(40))
//!     .file(diff_files("f.c", before, after, 3))
//!     .build();
//! let v: FeatureVector = extract(&patch, None);
//! assert_eq!(v.as_slice().len(), FEATURE_DIM);
//! assert!(v.get_named("added if statements") >= 1.0);
//! ```

#![warn(missing_docs)]

mod extract;
mod levenshtein;
mod summary;
mod vector;
mod weighting;

pub use extract::{extract, extract_batch, RepoContext};
pub use levenshtein::levenshtein;
pub use summary::{rank_discriminative, Discriminativeness, FeatureSummary};
pub use vector::{FeatureVector, FEATURE_DIM, FEATURE_NAMES};
pub use weighting::{
    apply_weights, euclidean, learn_weights, max_abs, merge_max_abs, squared_euclidean,
    weights_from_max_abs, Weights,
};
