//! The Table I feature extractor: patch in, 60-dimensional vector out.

use std::collections::HashSet;

use clang_lite::{abstract_tokens, count_stats, tokenize_fragment, FragmentStats, TokenKind};
use patch_core::{Hunk, LineKind, Patch};

use crate::levenshtein::levenshtein;
use crate::vector::{FeatureVector, FEATURE_DIM};

/// Repository-level denominators for the "% of affected files/functions"
/// features (57–60 in Table I). The paper's extractor knows the repository
/// each patch came from; when mining supplies this context the percentages
/// are true ratios, otherwise they degrade to 1.0 (patch-local view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepoContext {
    /// Total number of files in the repository at the patch's commit.
    pub total_files: usize,
    /// Total number of function definitions in the repository.
    pub total_functions: usize,
}

/// Extracts the 60 Table I features from one patch.
///
/// Works on the patch text alone (hunks and their lines); the patch need
/// not apply to any file snapshot. `ctx` feeds the percentage features.
pub fn extract(patch: &Patch, ctx: Option<&RepoContext>) -> FeatureVector {
    let mut f = [0.0f64; FEATURE_DIM];

    let hunks: Vec<&Hunk> = patch.hunks().collect();
    let n_hunks = hunks.len();

    let mut added_lines = 0usize;
    let mut removed_lines = 0usize;
    let mut added_chars = 0usize;
    let mut removed_chars = 0usize;
    let mut added = FragmentStats::default();
    let mut removed = FragmentStats::default();

    let mut lev_raw = Vec::with_capacity(n_hunks);
    let mut lev_abs = Vec::with_capacity(n_hunks);
    let mut hunk_keys_raw = Vec::with_capacity(n_hunks);
    let mut hunk_keys_abs = Vec::with_capacity(n_hunks);

    for h in &hunks {
        let mut old_tokens: Vec<String> = Vec::new();
        let mut new_tokens: Vec<String> = Vec::new();
        for l in &h.lines {
            let toks = tokenize_fragment(&l.content, 1);
            let texts = toks
                .iter()
                .filter(|t| !matches!(t.kind, TokenKind::Comment))
                .map(|t| t.text.clone());
            match l.kind {
                LineKind::Added => {
                    added_lines += 1;
                    added_chars += l.content.len();
                    added.add(&count_stats(&toks));
                    new_tokens.extend(texts);
                }
                LineKind::Removed => {
                    removed_lines += 1;
                    removed_chars += l.content.len();
                    removed.add(&count_stats(&toks));
                    old_tokens.extend(texts);
                }
                LineKind::Context => {
                    let texts: Vec<String> = texts.collect();
                    old_tokens.extend(texts.iter().cloned());
                    new_tokens.extend(texts);
                }
            }
        }

        lev_raw.push(levenshtein(&old_tokens, &new_tokens) as f64);

        // Abstraction is applied across the whole hunk body so numbering is
        // consistent between the old and new projections.
        let abstracted = |texts: &[String]| -> Vec<String> {
            let joined = texts.join(" ");
            abstract_tokens(&tokenize_fragment(&joined, 1))
                .into_iter()
                .map(|t| t.canon)
                .collect()
        };
        let old_abs = abstracted(&old_tokens);
        let new_abs = abstracted(&new_tokens);
        lev_abs.push(levenshtein(&old_abs, &new_abs) as f64);

        hunk_keys_raw.push(hunk_body_key(h, false));
        hunk_keys_abs.push(hunk_body_key(h, true));
    }

    let n = |x: usize| x as f64;

    // 1-2: basic shape.
    f[0] = n(added_lines + removed_lines);
    f[1] = n(n_hunks);
    // 3-6: lines.
    f[2] = n(added_lines);
    f[3] = n(removed_lines);
    f[4] = n(added_lines + removed_lines);
    f[5] = n(added_lines) - n(removed_lines);
    // 7-10: characters.
    f[6] = n(added_chars);
    f[7] = n(removed_chars);
    f[8] = n(added_chars + removed_chars);
    f[9] = n(added_chars) - n(removed_chars);

    // 11-46: the nine a/r/t/n statement & operator families.
    let fam = [
        (added.ifs, removed.ifs),
        (added.loops, removed.loops),
        (added.calls, removed.calls),
        (added.arithmetic_ops, removed.arithmetic_ops),
        (added.relation_ops, removed.relation_ops),
        (added.logical_ops, removed.logical_ops),
        (added.bitwise_ops, removed.bitwise_ops),
        (added.memory_ops, removed.memory_ops),
        (added.variables, removed.variables),
    ];
    for (k, (a, r)) in fam.iter().enumerate() {
        let base = 10 + 4 * k;
        f[base] = n(*a);
        f[base + 1] = n(*r);
        f[base + 2] = n(a + r);
        f[base + 3] = n(*a) - n(*r);
    }

    // 47-48: modified functions.
    let affected_functions = affected_function_count(patch);
    f[46] = n(affected_functions);
    f[47] = signature_delta(patch);

    // 49-54: intra-hunk Levenshtein, raw then abstracted.
    let (mean_r, min_r, max_r) = summarize(&lev_raw);
    f[48] = mean_r;
    f[49] = min_r;
    f[50] = max_r;
    let (mean_a, min_a, max_a) = summarize(&lev_abs);
    f[51] = mean_a;
    f[52] = min_a;
    f[53] = max_a;

    // 55-56: duplicate hunks (total minus distinct), raw and abstracted —
    // the "apply the same fix in N places" signal.
    f[54] = n(n_hunks - distinct(&hunk_keys_raw));
    f[55] = n(n_hunks - distinct(&hunk_keys_abs));

    // 57-60: affected range.
    let affected_files = patch.files.len();
    f[56] = n(affected_files);
    f[58] = n(affected_functions);
    match ctx {
        Some(c) => {
            f[57] = n(affected_files) / n(c.total_files.max(1));
            f[59] = n(affected_functions) / n(c.total_functions.max(1));
        }
        None => {
            f[57] = 1.0;
            f[59] = 1.0;
        }
    }

    let v = FeatureVector(f);
    // Every Table I feature is a count or a ratio with a guarded
    // denominator; a NaN/infinite dimension means an extractor bug and
    // would otherwise surface far away, as a silently wrong nearest link.
    debug_assert!(
        v.is_finite(),
        "extract produced a non-finite feature vector for commit {}",
        patch.commit
    );
    v
}

/// Extracts features for a batch of patches (convenience for pipelines).
pub fn extract_batch<'a, I>(patches: I, ctx: Option<&RepoContext>) -> Vec<FeatureVector>
where
    I: IntoIterator<Item = &'a Patch>,
{
    patches.into_iter().map(|p| extract(p, ctx)).collect()
}

/// Counts distinct functions a patch touches: distinct `@@ … @@ section`
/// texts where available, anonymous hunks counting individually.
fn affected_function_count(patch: &Patch) -> usize {
    let mut named: HashSet<&str> = HashSet::new();
    let mut anonymous = 0usize;
    for h in patch.hunks() {
        let sec = h.section.trim();
        if sec.is_empty() {
            anonymous += 1;
        } else {
            named.insert(sec);
        }
    }
    named.len() + anonymous
}

/// Net function definitions: signature-looking added lines minus removed.
fn signature_delta(patch: &Patch) -> f64 {
    let mut delta = 0i64;
    for h in patch.hunks() {
        for l in &h.lines {
            if looks_like_signature(&l.content) {
                match l.kind {
                    LineKind::Added => delta += 1,
                    LineKind::Removed => delta -= 1,
                    LineKind::Context => {}
                }
            }
        }
    }
    delta as f64
}

/// Heuristic for a function-definition opener: a type-ish prefix, a called
/// identifier, and the line ending in `{` or `)` at top-level indentation.
fn looks_like_signature(line: &str) -> bool {
    if line.starts_with([' ', '\t']) {
        return false;
    }
    let toks = tokenize_fragment(line, 1);
    if toks.len() < 4 {
        return false;
    }
    let first_typeish = match &toks[0].kind {
        TokenKind::Keyword(kw) => kw.is_type(),
        TokenKind::Ident => true,
        _ => false,
    };
    let has_call = toks
        .windows(2)
        .any(|w| w[0].kind == TokenKind::Ident && w[1].is_punct("("));
    let last = toks.last().expect("len checked");
    first_typeish && has_call && (last.is_punct("{") || last.is_punct(")"))
}

fn summarize(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let sum: f64 = xs.iter().sum();
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (sum / xs.len() as f64, min, max)
}

fn distinct(keys: &[String]) -> usize {
    keys.iter().collect::<HashSet<_>>().len()
}

/// Canonical key of a hunk body for duplicate detection; with `abs` the
/// tokens are abstracted first so renamed copies of a fix still collide.
fn hunk_body_key(hunk: &Hunk, abs: bool) -> String {
    let mut key = String::new();
    for l in &hunk.lines {
        key.push(match l.kind {
            LineKind::Context => ' ',
            LineKind::Added => '+',
            LineKind::Removed => '-',
        });
        if abs {
            for t in abstract_tokens(&tokenize_fragment(&l.content, 1)) {
                key.push_str(&t.canon);
                key.push('\u{1}');
            }
        } else {
            key.push_str(l.content.trim());
        }
        key.push('\n');
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::diff_files;

    fn patch_of(before: &str, after: &str) -> Patch {
        Patch::builder("0".repeat(40))
            .message("test")
            .file(diff_files("t.c", before, after, 3))
            .build()
    }

    #[test]
    fn sanity_check_features() {
        let p = patch_of(
            "int f(int a) {\n  return a;\n}\n",
            "int f(int a) {\n  if (a < 0)\n    return 0;\n  return a;\n}\n",
        );
        let v = extract(&p, None);
        assert_eq!(v.get_named("hunks"), 1.0);
        assert_eq!(v.get_named("added lines"), 2.0);
        assert_eq!(v.get_named("removed lines"), 0.0);
        assert_eq!(v.get_named("added if statements"), 1.0);
        assert_eq!(v.get_named("net if statements"), 1.0);
        assert_eq!(v.get_named("added relation operators"), 1.0);
        assert_eq!(v.get_named("affected files"), 1.0);
        assert!(v.is_finite());
    }

    #[test]
    fn net_features_signed() {
        let p = patch_of(
            "void g() {\n  if (a) b();\n  if (c) d();\n}\n",
            "void g() {\n  b();\n}\n",
        );
        let v = extract(&p, None);
        assert!(v.get_named("net if statements") <= -2.0 + 1e-9);
        assert!(v.get_named("net lines") < 0.0);
    }

    #[test]
    fn levenshtein_abstracted_leq_raw_for_rename() {
        // Pure rename: abstracted distance collapses to 0.
        let p = patch_of(
            "void g() {\n  total = total + item;\n}\n",
            "void g() {\n  sum = sum + node;\n}\n",
        );
        let v = extract(&p, None);
        assert!(v.get_named("mean hunk levenshtein") > 0.0);
        assert_eq!(v.get_named("mean hunk levenshtein (abstracted)"), 0.0);
    }

    #[test]
    fn duplicate_hunks_detected() {
        let before = (0..30).map(|i| format!("line{i};")).collect::<Vec<_>>();
        let mut after = before.clone();
        after[2] = "fixed();".to_owned();
        after[20] = "fixed();".to_owned();
        let p = patch_of(
            &patch_core::join_lines(&before),
            &patch_core::join_lines(&after),
        );
        let v = extract(&p, None);
        assert_eq!(v.get_named("hunks"), 2.0);
        // Bodies differ in context, so raw duplicates stay 0 here; the
        // abstracted key also includes context, hence also 0. Duplicate
        // detection needs identical bodies:
        assert_eq!(v.get_named("same hunks"), 0.0);
    }

    #[test]
    fn identical_hunk_bodies_count_as_same() {
        use patch_core::{FileDiff, Hunk, Line};
        let mk = |start: usize| Hunk {
            old_start: start,
            old_count: 1,
            new_start: start,
            new_count: 1,
            section: String::new(),
            lines: vec![Line::removed("old();"), Line::added("new();")],
        };
        let p = Patch::builder("0".repeat(40))
            .file(FileDiff::new("x.c", vec![mk(1), mk(10), mk(20)]))
            .build();
        let v = extract(&p, None);
        assert_eq!(v.get_named("same hunks"), 2.0); // 3 hunks, 1 distinct
    }

    #[test]
    fn repo_context_drives_percentages() {
        let p = patch_of("a();\n", "b();\n");
        let ctx = RepoContext { total_files: 50, total_functions: 200 };
        let v = extract(&p, Some(&ctx));
        assert!((v.get_named("affected files %") - 0.02).abs() < 1e-12);
        assert!(v.get_named("affected functions %") > 0.0);
        let v_no = extract(&p, None);
        assert_eq!(v_no.get_named("affected files %"), 1.0);
    }

    #[test]
    fn empty_patch_is_zeroish() {
        let p = Patch::builder("0".repeat(40))
            .file(patch_core::FileDiff::new("x.c", vec![]))
            .build();
        let v = extract(&p, None);
        assert_eq!(v.get_named("hunks"), 0.0);
        assert!(v.is_finite());
    }

    #[test]
    fn signature_detection() {
        assert!(looks_like_signature("int foo(int a) {"));
        assert!(looks_like_signature("static void bar(void)"));
        assert!(!looks_like_signature("  foo(a);"));
        assert!(!looks_like_signature("x = 1;"));
    }

    #[test]
    fn extract_output_is_finite_and_guard_detects_bad_vectors() {
        // Degenerate shapes that stress every ratio denominator: empty
        // patch, zero-context, and a context with zero totals.
        let shapes = [
            patch_of("", "x();\n"),
            patch_of("x();\n", ""),
            patch_of("a();\n", "a();\n"),
        ];
        let ctx = RepoContext { total_files: 0, total_functions: 0 };
        for p in &shapes {
            assert!(extract(p, None).is_finite());
            assert!(extract(p, Some(&ctx)).is_finite());
        }
        // And the guard itself distinguishes good from bad vectors.
        let mut bad = FeatureVector::zero();
        bad.as_mut_slice()[7] = f64::NAN;
        assert!(!bad.is_finite());
        bad.as_mut_slice()[7] = f64::INFINITY;
        assert!(!bad.is_finite());
    }

    #[test]
    fn batch_matches_single() {
        let p = patch_of("a();\n", "b();\n");
        let batch = extract_batch([&p.clone(), &p].map(|x| x.clone()).iter(), None);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], extract(&p, None));
    }
}
