//! Population-level feature statistics: per-class means/deviations over
//! the 60 Table I dimensions and a discriminativeness ranking — the
//! analysis view used to ask *which* syntactic features separate security
//! patches from the rest (and to sanity-check corpus calibration).


use crate::vector::{FeatureVector, FEATURE_DIM, FEATURE_NAMES};

/// Mean and standard deviation of every feature over one population.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSummary {
    /// Number of vectors summarized.
    pub count: usize,
    /// Per-dimension means.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviations (population form).
    pub std: Vec<f64>,
}

impl FeatureSummary {
    /// Summarizes a population. An empty population yields zeros.
    pub fn of<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a FeatureVector>,
    {
        let mut mean = vec![0.0; FEATURE_DIM];
        let mut m2 = vec![0.0; FEATURE_DIM];
        let mut count = 0usize;
        // Welford's online algorithm keeps this single-pass and stable.
        for row in rows {
            count += 1;
            for ((m, s), v) in mean.iter_mut().zip(m2.iter_mut()).zip(row.as_slice()) {
                let delta = v - *m;
                *m += delta / count as f64;
                *s += delta * (v - *m);
            }
        }
        let std = m2
            .iter()
            .map(|s| if count > 0 { (s / count as f64).sqrt() } else { 0.0 })
            .collect();
        FeatureSummary { count, mean, std }
    }

    /// The mean of a feature by Table I name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown feature name.
    pub fn mean_of(&self, name: &str) -> f64 {
        let i = FEATURE_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown feature name: {name}"));
        self.mean[i]
    }
}

/// One feature's separation between two populations.
#[derive(Debug, Clone, PartialEq)]
pub struct Discriminativeness {
    /// Feature index into [`FEATURE_NAMES`].
    pub feature: usize,
    /// Table I name.
    pub name: &'static str,
    /// |mean_a − mean_b| / pooled std (Cohen's d, population form).
    pub effect_size: f64,
    /// Mean in population A.
    pub mean_a: f64,
    /// Mean in population B.
    pub mean_b: f64,
}

/// Ranks the 60 features by how strongly they separate two populations
/// (largest effect size first). Constant features rank last with effect 0.
pub fn rank_discriminative(
    a: &FeatureSummary,
    b: &FeatureSummary,
) -> Vec<Discriminativeness> {
    let mut out: Vec<Discriminativeness> = (0..FEATURE_DIM)
        .map(|i| {
            let pooled = ((a.std[i] * a.std[i] + b.std[i] * b.std[i]) / 2.0).sqrt();
            let effect = if pooled > 1e-12 {
                (a.mean[i] - b.mean[i]).abs() / pooled
            } else {
                0.0
            };
            Discriminativeness {
                feature: i,
                name: FEATURE_NAMES[i],
                effect_size: effect,
                mean_a: a.mean[i],
                mean_b: b.mean[i],
            }
        })
        .collect();
    out.sort_by(|x, y| y.effect_size.total_cmp(&x.effect_size));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(idx: usize, val: f64) -> FeatureVector {
        let mut v = FeatureVector::zero();
        v.as_mut_slice()[idx] = val;
        v
    }

    #[test]
    fn welford_matches_direct_formulas() {
        let rows = vec![fv(0, 1.0), fv(0, 2.0), fv(0, 3.0), fv(0, 4.0)];
        let s = FeatureSummary::of(&rows);
        assert_eq!(s.count, 4);
        assert!((s.mean[0] - 2.5).abs() < 1e-12);
        // Population std of {1,2,3,4} = sqrt(1.25).
        assert!((s.std[0] - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.mean[1], 0.0);
    }

    #[test]
    fn empty_population_is_zeros() {
        let s = FeatureSummary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert!(s.mean.iter().all(|m| *m == 0.0));
        assert!(s.std.iter().all(|m| *m == 0.0));
    }

    #[test]
    fn ranking_surfaces_the_separating_feature() {
        // Population A differs from B only on feature 10 (added ifs).
        let a: Vec<FeatureVector> = (0..50).map(|i| fv(10, 3.0 + (i % 3) as f64 * 0.1)).collect();
        let b: Vec<FeatureVector> = (0..50).map(|i| fv(10, (i % 3) as f64 * 0.1)).collect();
        let ranked = rank_discriminative(&FeatureSummary::of(&a), &FeatureSummary::of(&b));
        assert_eq!(ranked[0].feature, 10);
        assert_eq!(ranked[0].name, "added if statements");
        assert!(ranked[0].effect_size > 5.0);
        assert_eq!(ranked.last().unwrap().effect_size, 0.0);
    }

    #[test]
    fn mean_lookup_by_name() {
        let s = FeatureSummary::of(&[fv(1, 4.0), fv(1, 6.0)]);
        assert!((s.mean_of("hunks") - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown feature name")]
    fn mean_lookup_rejects_typos() {
        FeatureSummary::of(std::iter::empty()).mean_of("nope");
    }

    #[test]
    fn corpus_classes_are_separable_somewhere() {
        // Security patches vs doc/style churn must differ strongly on at
        // least one dimension (the whole premise of the feature space).
        use patch_core::diff_files;
        let sec = patch_core::Patch::builder("a".repeat(40))
            .file(diff_files(
                "a.c",
                "int f(int i, int n) {\n    buf[i] = 1;\n    return 0;\n}\n",
                "int f(int i, int n) {\n    if (i >= n)\n        return -1;\n    buf[i] = 1;\n    return 0;\n}\n",
                3,
            ))
            .build();
        let doc = patch_core::Patch::builder("b".repeat(40))
            .file(diff_files(
                "a.c",
                "/* old comment */\nint g;\n",
                "/* new comment */\nint g;\n",
                3,
            ))
            .build();
        let sa = FeatureSummary::of(&[crate::extract(&sec, None)]);
        let sb = FeatureSummary::of(&[crate::extract(&doc, None)]);
        assert!(sa.mean_of("added if statements") > sb.mean_of("added if statements"));
    }
}
