//! The 60-dimensional feature vector of Table I.

use std::fmt;
use std::ops::Index;


/// Dimensionality of the Table I feature space.
pub const FEATURE_DIM: usize = 60;

/// Human-readable names of all 60 features, index-aligned with
/// [`FeatureVector`]. The numbering follows Table I of the paper
/// (1-based there, 0-based here).
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    // 1-2: basic patch shape
    "changed lines",
    "hunks",
    // 3-6: lines
    "added lines",
    "removed lines",
    "total lines",
    "net lines",
    // 7-10: characters
    "added characters",
    "removed characters",
    "total characters",
    "net characters",
    // 11-14: if statements
    "added if statements",
    "removed if statements",
    "total if statements",
    "net if statements",
    // 15-18: loops
    "added loops",
    "removed loops",
    "total loops",
    "net loops",
    // 19-22: function calls
    "added function calls",
    "removed function calls",
    "total function calls",
    "net function calls",
    // 23-26: arithmetic operators
    "added arithmetic operators",
    "removed arithmetic operators",
    "total arithmetic operators",
    "net arithmetic operators",
    // 27-30: relation operators
    "added relation operators",
    "removed relation operators",
    "total relation operators",
    "net relation operators",
    // 31-34: logical operators
    "added logical operators",
    "removed logical operators",
    "total logical operators",
    "net logical operators",
    // 35-38: bitwise operators
    "added bitwise operators",
    "removed bitwise operators",
    "total bitwise operators",
    "net bitwise operators",
    // 39-42: memory operators
    "added memory operators",
    "removed memory operators",
    "total memory operators",
    "net memory operators",
    // 43-46: variables
    "added variables",
    "removed variables",
    "total variables",
    "net variables",
    // 47-48: modified functions
    "total modified functions",
    "net modified functions",
    // 49-51: Levenshtein before abstraction
    "mean hunk levenshtein",
    "min hunk levenshtein",
    "max hunk levenshtein",
    // 52-54: Levenshtein after abstraction
    "mean hunk levenshtein (abstracted)",
    "min hunk levenshtein (abstracted)",
    "max hunk levenshtein (abstracted)",
    // 55-56: identical hunks
    "same hunks",
    "same hunks (abstracted)",
    // 57-60: affected range
    "affected files",
    "affected files %",
    "affected functions",
    "affected functions %",
];

/// A point in the Table I feature space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector(pub [f64; FEATURE_DIM]);

impl patchdb_rt::json::ToJson for FeatureVector {
    fn to_json(&self) -> patchdb_rt::json::Json {
        // A plain 60-element number array, as serde encoded it.
        patchdb_rt::json::Json::Arr(
            self.0.iter().map(|&x| patchdb_rt::json::Json::Num(x)).collect(),
        )
    }
}

impl patchdb_rt::json::FromJson for FeatureVector {
    fn from_json(v: &patchdb_rt::json::Json) -> patchdb_rt::json::Result<Self> {
        let values: Vec<f64> = patchdb_rt::json::FromJson::from_json(v)?;
        values.try_into().map(FeatureVector).map_err(|v: Vec<f64>| {
            patchdb_rt::json::JsonError::new(format!(
                "expected {FEATURE_DIM} features, got {}",
                v.len()
            ))
        })
    }
}

impl FeatureVector {
    /// The all-zero vector.
    pub fn zero() -> Self {
        FeatureVector([0.0; FEATURE_DIM])
    }

    /// A view of the raw values.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutable view of the raw values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Looks a feature up by its Table I name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of [`FEATURE_NAMES`]; this is a
    /// programmer-facing convenience for tests and reports.
    pub fn get_named(&self, name: &str) -> f64 {
        let idx = FEATURE_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown feature name: {name}"));
        self.0[idx]
    }

    /// True when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self::zero()
    }
}

impl Index<usize> for FeatureVector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FeatureVector {{")?;
        for (name, v) in FEATURE_NAMES.iter().zip(self.0.iter()) {
            if *v != 0.0 {
                writeln!(f, "  {name}: {v}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_complete() {
        let mut sorted: Vec<&str> = FEATURE_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), FEATURE_DIM);
    }

    #[test]
    fn get_named_round_trips() {
        let mut v = FeatureVector::zero();
        v.0[1] = 7.0;
        assert_eq!(v.get_named("hunks"), 7.0);
        assert_eq!(v[1], 7.0);
    }

    #[test]
    #[should_panic(expected = "unknown feature name")]
    fn get_named_panics_on_typo() {
        FeatureVector::zero().get_named("bananas");
    }

    #[test]
    fn json_round_trip() {
        use patchdb_rt::json::{FromJson, Json, ToJson};
        let mut v = FeatureVector::zero();
        v.0[59] = -2.5;
        let json = v.to_json().to_compact_string();
        let back = FeatureVector::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn display_skips_zeroes() {
        let mut v = FeatureVector::zero();
        v.0[0] = 3.0;
        let text = v.to_string();
        assert!(text.contains("changed lines: 3"));
        assert!(!text.contains("hunks"));
    }
}
