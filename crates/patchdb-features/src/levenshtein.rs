//! Generic Levenshtein edit distance, used by Table I features 49–56 to
//! measure intra-hunk before/after similarity at the token level.

/// Computes the Levenshtein distance between two sequences with the
/// classic two-row dynamic program: O(|a|·|b|) time, O(min(|a|,|b|)) space.
///
/// ```rust
/// use patchdb_features::levenshtein;
/// assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
/// assert_eq!(levenshtein::<u8>(&[], &[]), 0);
/// ```
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Keep the shorter sequence as the DP row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }

    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lv) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sv) in short.iter().enumerate() {
            let cost = usize::from(lv != sv);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein::<char>(&[], &[]), 0);
        assert_eq!(levenshtein(&[] as &[u8], b"xyz"), 3);
        assert_eq!(levenshtein(b"xyz", &[] as &[u8]), 3);
    }

    #[test]
    fn works_on_token_slices() {
        let a = ["if", "(", "x", ")"];
        let b = ["if", "(", "x", "&&", "y", ")"];
        assert_eq!(levenshtein(&a, &b), 2);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein(b"abcdef", b"azced"), levenshtein(b"azced", b"abcdef"));
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let (a, b, c) = (b"abcd".as_slice(), b"axcd".as_slice(), b"xycd".as_slice());
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}
