//! Feature weighting and distances (Section III-B-2).
//!
//! Each dimension j is scaled by `w_j = 1 / max_i |a_ij|` over the pooled
//! population (security + wild patches), mapping values into `[-1, 1]`
//! while preserving signs of net features. Distances between weighted
//! vectors are plain Euclidean.


use crate::vector::{FeatureVector, FEATURE_DIM};

/// Per-dimension weights learned from a population of feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    values: Vec<f64>,
}

impl Weights {
    /// Identity weights (no scaling).
    pub fn identity() -> Self {
        Weights { values: vec![1.0; FEATURE_DIM] }
    }

    /// A view of the per-dimension weight values.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Rebuilds weights from previously learned per-dimension values
    /// (the inverse of [`Weights::as_slice`]), for codecs that persist
    /// a learned model. Rejects a wrong dimension count rather than
    /// silently mis-scaling.
    pub fn from_values(values: Vec<f64>) -> Result<Self, String> {
        if values.len() != FEATURE_DIM {
            return Err(format!("expected {FEATURE_DIM} weights, got {}", values.len()));
        }
        Ok(Weights { values })
    }
}

/// Per-dimension `max_i |a_ij|` over `rows` — the statistic
/// [`learn_weights`] inverts.
///
/// Elementwise `max` of absolute values is associative and commutative
/// (absolute values are non-negative and never NaN here), so maxima over
/// sub-populations can be merged with [`merge_max_abs`] in any order and
/// still equal one pass over the union. The augmentation driver relies on
/// this to maintain the security-set maximum incrementally instead of
/// rescanning the whole (growing) set every round.
pub fn max_abs<'a, I>(rows: I) -> [f64; FEATURE_DIM]
where
    I: IntoIterator<Item = &'a FeatureVector>,
{
    let mut out = [0.0f64; FEATURE_DIM];
    for row in rows {
        for (m, v) in out.iter_mut().zip(row.as_slice()) {
            *m = m.max(v.abs());
        }
    }
    out
}

/// Merges `other` into `acc` elementwise (`acc_j = max(acc_j, other_j)`).
pub fn merge_max_abs(acc: &mut [f64; FEATURE_DIM], other: &[f64; FEATURE_DIM]) {
    for (a, o) in acc.iter_mut().zip(other) {
        *a = a.max(*o);
    }
}

/// Builds [`Weights`] from a precomputed per-dimension maximum, applying
/// the same zero-column rule as [`learn_weights`].
pub fn weights_from_max_abs(max_abs: &[f64; FEATURE_DIM]) -> Weights {
    Weights {
        values: max_abs
            .iter()
            .map(|m| if *m > 0.0 { 1.0 / m } else { 0.0 })
            .collect(),
    }
}

/// Learns `w_j = 1 / max_i |a_ij|` over `rows`.
///
/// Dimensions that are identically zero across the population get weight
/// 0 rather than an infinity: a constant column carries no information and
/// must not poison distances (documented deviation from the paper's
/// formula, which is undefined there).
pub fn learn_weights<'a, I>(rows: I) -> Weights
where
    I: IntoIterator<Item = &'a FeatureVector>,
{
    weights_from_max_abs(&max_abs(rows))
}

/// Applies weights to a vector, producing the normalized point.
pub fn apply_weights(v: &FeatureVector, w: &Weights) -> FeatureVector {
    let mut out = [0.0f64; FEATURE_DIM];
    for ((o, x), wj) in out.iter_mut().zip(v.as_slice()).zip(&w.values) {
        *o = x * wj;
    }
    FeatureVector(out)
}

/// Squared Euclidean distance between two (weighted) feature vectors.
///
/// Exactly the pre-`sqrt` sum of [`euclidean`] (same accumulation
/// order), so comparing squared distances is an exact, rounding-free
/// stand-in for comparing distances — `sqrt` is monotone and the square
/// is what the hardware computed first. The nearest link search compares
/// in this space to skip a `sqrt` per candidate pair.
pub fn squared_euclidean(a: &FeatureVector, b: &FeatureVector) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// Euclidean distance between two (weighted) feature vectors.
pub fn euclidean(a: &FeatureVector, b: &FeatureVector) -> f64 {
    squared_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_with(idx: usize, val: f64) -> FeatureVector {
        let mut v = FeatureVector::zero();
        v.as_mut_slice()[idx] = val;
        v
    }

    #[test]
    fn weights_scale_to_unit_range() {
        let rows = vec![vec_with(0, 10.0), vec_with(0, -40.0), vec_with(1, 4.0)];
        let w = learn_weights(&rows);
        assert!((w.as_slice()[0] - 1.0 / 40.0).abs() < 1e-12);
        for r in &rows {
            let n = apply_weights(r, &w);
            assert!(n.as_slice().iter().all(|x| x.abs() <= 1.0 + 1e-12));
        }
        // Sign preserved.
        assert!(apply_weights(&rows[1], &w).as_slice()[0] < 0.0);
    }

    #[test]
    fn zero_column_gets_zero_weight() {
        let rows = vec![vec_with(2, 1.0)];
        let w = learn_weights(&rows);
        assert_eq!(w.as_slice()[0], 0.0);
        assert!(w.as_slice()[2] > 0.0);
        // And applying them never produces NaN.
        let n = apply_weights(&rows[0], &w);
        assert!(n.is_finite());
    }

    #[test]
    fn euclidean_axioms() {
        let a = vec_with(0, 3.0);
        let b = vec_with(1, 4.0);
        assert_eq!(euclidean(&a, &a), 0.0);
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
    }

    #[test]
    fn identity_weights_are_noop() {
        let v = vec_with(5, 2.5);
        assert_eq!(apply_weights(&v, &Weights::identity()), v);
    }

    #[test]
    fn empty_population_weights_all_zero() {
        let w = learn_weights(std::iter::empty());
        assert!(w.as_slice().iter().all(|x| *x == 0.0));
    }
}
