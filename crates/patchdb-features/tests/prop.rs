//! Property tests: feature extraction must be total, finite, and
//! consistent with basic patch structure; weighting must land in [-1, 1].

use proptest::prelude::*;

use patch_core::{diff_files, join_lines, Patch};
use patchdb_features::{apply_weights, extract, learn_weights, levenshtein, RepoContext};

fn code_lines() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec![
            "int x = 0;",
            "if (x > y)",
            "    return -1;",
            "for (i = 0; i < n; i++)",
            "buf[i] = f(ctx, i);",
            "free(p);",
            "p = malloc(n);",
            "}",
            "{",
            "",
        ])
        .prop_map(str::to_owned),
        1..30,
    )
}

fn random_patch() -> impl Strategy<Value = Patch> {
    (code_lines(), code_lines()).prop_map(|(old, new)| {
        Patch::builder("ab".repeat(20))
            .message("prop")
            .file(diff_files("p.c", &join_lines(&old), &join_lines(&new), 3))
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Extraction never produces NaN/inf and respects structural counts.
    #[test]
    fn extraction_is_finite_and_consistent(patch in random_patch()) {
        let v = extract(&patch, None);
        prop_assert!(v.is_finite());
        let added: usize = patch.hunks().map(|h| h.added_count()).sum();
        let removed: usize = patch.hunks().map(|h| h.removed_count()).sum();
        prop_assert_eq!(v.get_named("added lines"), added as f64);
        prop_assert_eq!(v.get_named("removed lines"), removed as f64);
        prop_assert_eq!(v.get_named("changed lines"), (added + removed) as f64);
        prop_assert_eq!(
            v.get_named("net lines"),
            added as f64 - removed as f64
        );
        prop_assert_eq!(v.get_named("hunks"), patch.hunk_count() as f64);
        // a/r/t/n coherence for every statement family.
        for fam in ["if statements", "loops", "function calls", "variables"] {
            let a = v.get_named(&format!("added {fam}"));
            let r = v.get_named(&format!("removed {fam}"));
            prop_assert_eq!(v.get_named(&format!("total {fam}")), a + r);
            prop_assert_eq!(v.get_named(&format!("net {fam}")), a - r);
        }
    }

    /// Weighted features always land in [-1, 1], signs preserved.
    #[test]
    fn weighting_is_bounded(patches in prop::collection::vec(random_patch(), 2..12)) {
        let rows: Vec<_> = patches.iter().map(|p| extract(p, None)).collect();
        let w = learn_weights(&rows);
        for r in &rows {
            let n = apply_weights(r, &w);
            prop_assert!(n.is_finite());
            for (orig, scaled) in r.as_slice().iter().zip(n.as_slice()) {
                prop_assert!(scaled.abs() <= 1.0 + 1e-9);
                prop_assert!(orig.signum() * scaled >= -1e-12, "sign flipped");
            }
        }
    }

    /// Levenshtein metric axioms on token-ish sequences.
    #[test]
    fn levenshtein_axioms(
        a in prop::collection::vec(0u8..6, 0..24),
        b in prop::collection::vec(0u8..6, 0..24),
        c in prop::collection::vec(0u8..6, 0..24),
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        let diff = (a.len() as isize - b.len() as isize).unsigned_abs();
        prop_assert!(levenshtein(&a, &b) >= diff);
        prop_assert!(levenshtein(&a, &b) <= a.len().max(b.len()));
    }

    /// Percentages use the supplied repository context.
    #[test]
    fn context_percentages(patch in random_patch(), files in 1usize..1000, funcs in 1usize..1000) {
        let ctx = RepoContext { total_files: files, total_functions: funcs };
        let v = extract(&patch, Some(&ctx));
        let af = v.get_named("affected files");
        prop_assert!((v.get_named("affected files %") - af / files as f64).abs() < 1e-12);
        prop_assert!(v.get_named("affected functions %") <= v.get_named("affected functions"));
    }
}
