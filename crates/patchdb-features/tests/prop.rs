//! Property tests: feature extraction must be total, finite, and
//! consistent with basic patch structure; weighting must land in [-1, 1].
//! Runs on `patchdb_rt::check`, the in-repo property harness.

use patchdb_rt::check::{check, Gen};

use patch_core::{diff_files, join_lines, Patch};
use patchdb_features::{apply_weights, extract, learn_weights, levenshtein, RepoContext};

const CASES: u32 = 200;

fn code_lines(g: &mut Gen) -> Vec<String> {
    const LINES: &[&str] = &[
        "int x = 0;",
        "if (x > y)",
        "    return -1;",
        "for (i = 0; i < n; i++)",
        "buf[i] = f(ctx, i);",
        "free(p);",
        "p = malloc(n);",
        "}",
        "{",
        "",
    ];
    g.vec_with(1, 29, |g| (*g.pick(LINES)).to_owned())
}

fn random_patch(g: &mut Gen) -> Patch {
    let old = code_lines(g);
    let new = code_lines(g);
    Patch::builder("ab".repeat(20))
        .message("prop")
        .file(diff_files("p.c", &join_lines(&old), &join_lines(&new), 3))
        .build()
}

/// Extraction never produces NaN/inf and respects structural counts.
#[test]
fn extraction_is_finite_and_consistent() {
    check("extraction_is_finite_and_consistent", CASES, |g| {
        let patch = random_patch(g);
        let v = extract(&patch, None);
        assert!(v.is_finite());
        let added: usize = patch.hunks().map(|h| h.added_count()).sum();
        let removed: usize = patch.hunks().map(|h| h.removed_count()).sum();
        assert_eq!(v.get_named("added lines"), added as f64);
        assert_eq!(v.get_named("removed lines"), removed as f64);
        assert_eq!(v.get_named("changed lines"), (added + removed) as f64);
        assert_eq!(v.get_named("net lines"), added as f64 - removed as f64);
        assert_eq!(v.get_named("hunks"), patch.hunk_count() as f64);
        // a/r/t/n coherence for every statement family.
        for fam in ["if statements", "loops", "function calls", "variables"] {
            let a = v.get_named(&format!("added {fam}"));
            let r = v.get_named(&format!("removed {fam}"));
            assert_eq!(v.get_named(&format!("total {fam}")), a + r);
            assert_eq!(v.get_named(&format!("net {fam}")), a - r);
        }
    });
}

/// Weighted features always land in [-1, 1], signs preserved.
#[test]
fn weighting_is_bounded() {
    check("weighting_is_bounded", CASES, |g| {
        let patches = g.vec_with(2, 11, random_patch);
        let rows: Vec<_> = patches.iter().map(|p| extract(p, None)).collect();
        let w = learn_weights(&rows);
        for r in &rows {
            let n = apply_weights(r, &w);
            assert!(n.is_finite());
            for (orig, scaled) in r.as_slice().iter().zip(n.as_slice()) {
                assert!(scaled.abs() <= 1.0 + 1e-9);
                assert!(orig.signum() * scaled >= -1e-12, "sign flipped");
            }
        }
    });
}

/// Levenshtein metric axioms on token-ish sequences.
#[test]
fn levenshtein_axioms() {
    check("levenshtein_axioms", CASES, |g| {
        let seq = |g: &mut Gen| g.vec_with(0, 23, |g| g.u64_in(0, 5) as u8);
        let a = seq(g);
        let b = seq(g);
        let c = seq(g);
        assert_eq!(levenshtein(&a, &a), 0);
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        let diff = (a.len() as isize - b.len() as isize).unsigned_abs();
        assert!(levenshtein(&a, &b) >= diff);
        assert!(levenshtein(&a, &b) <= a.len().max(b.len()));
    });
}

/// Percentages use the supplied repository context.
#[test]
fn context_percentages() {
    check("context_percentages", CASES, |g| {
        let patch = random_patch(g);
        let files = g.usize_in(1, 999);
        let funcs = g.usize_in(1, 999);
        let ctx = RepoContext { total_files: files, total_functions: funcs };
        let v = extract(&patch, Some(&ctx));
        let af = v.get_named("affected files");
        assert!((v.get_named("affected files %") - af / files as f64).abs() < 1e-12);
        assert!(v.get_named("affected functions %") <= v.get_named("affected functions"));
    });
}
