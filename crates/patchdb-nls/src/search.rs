//! Algorithm 1: the nearest link search.
//!
//! Given M verified security patches and N wild patches in the weighted
//! feature space, find for each security patch one *distinct* wild patch
//! ("link") such that the total link distance is (greedily) minimized.
//! Unlike k-NN, each wild patch may be claimed at most once — the paper is
//! explicit about this distinction (Section III-B-3).
//!
//! ## How the fast path stays byte-identical to Algorithm 1
//!
//! The production entry point ([`nearest_link_search`]) parallelizes the
//! `O(M·N)` init pass and prunes distance work, yet returns exactly what
//! the faithful serial loop ([`nearest_link_search_serial`]) returns:
//!
//! * **Squared distances.** All comparisons happen on squared Euclidean
//!   distances — the exact sum the hardware computes *before* the
//!   rounding `sqrt`. `sqrt` is monotone, so the argmin is unchanged and
//!   the comparison is strictly more precise.
//! * **Per-row minima are order-independent.** Each security row's
//!   k-best candidates are the k smallest `(d², wild index)` pairs under
//!   lexicographic order — a well-defined set regardless of scan order or
//!   thread count. Rows fan out across threads with
//!   `patchdb_rt::par::map_chunked_indexed`, which reassembles results in
//!   row order.
//! * **Pruning only skips provable losers.** The norm lower bound
//!   `d ≥ |‖s‖−‖w‖|` and the early-exit partial sums only discard
//!   candidates whose squared distance provably exceeds the current k-th
//!   best, so the surviving k-best set is identical. The norm bound keeps
//!   a tiny relative slack ([`PRUNE_SLACK`]) to absorb the rounding in
//!   the precomputed norms; early-exit partial sums are exact prefixes of
//!   the final sum and need no slack.
//! * **Ties break on the smaller index, everywhere.** This reproduces
//!   the serial first-hit-wins scan and the `min_by` "first minimum"
//!   rule, and makes the result independent of candidate visit order.

use patchdb_features::{squared_euclidean, FeatureVector};
use patchdb_rt::{obs, par};

use crate::index::WildIndex;

/// Relative slack applied to the `(‖s‖−‖w‖)²` norm lower bound and the
/// `(d(q,centroid)−radius)²` cell lower bound before pruning on them:
/// candidates are skipped only when the bound *with slack* still
/// exceeds the current k-th best squared distance. The norms/centroid
/// distances are precomputed with a few ulps of rounding; the slack
/// (many orders of magnitude larger than that rounding, many orders
/// smaller than any real distance gap) guarantees pruning never drops a
/// candidate the exhaustive scan would have kept.
pub(crate) const PRUNE_SLACK: f64 = 1.0 - 1e-9;

/// Dimensions accumulated between early-exit threshold checks.
pub(crate) const EARLY_EXIT_STRIDE: usize = 15;

/// Which candidate-generation machinery the init pass (and the collision
/// rescans) run on. Output bytes are identical in every mode — the index
/// modes only skip candidates whose squared distance *provably* exceeds
/// the current k-best threshold, and re-rank every survivor with the
/// exact f64 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Linear scan over the pool (optionally norm-pruned via
    /// [`NlsConfig::prune`]). No index is built.
    Scan,
    /// Coarse k-means partition: only cells whose centroid-distance
    /// bound can beat the current k-best are scanned, with a blocked
    /// (structure-of-arrays) exact kernel inside each cell.
    Partitioned,
    /// The partition plus an 8-bit scalar-quantized fast path: cell
    /// survivors are bound-checked in code space first and only
    /// re-ranked exactly when the (sound) lower bound cannot rule them
    /// out.
    Quantized,
}

/// How the nearest link search runs; output is identical for every
/// configuration, only wall time changes.
#[derive(Debug, Clone)]
pub struct NlsConfig {
    /// Worker threads for the init pass (the greedy assignment loop is
    /// inherently sequential and always runs on the caller's thread).
    pub threads: usize,
    /// Enable norm-bound + early-exit distance pruning
    /// ([`IndexMode::Scan`] only; the index modes carry their own
    /// bounds).
    pub prune: bool,
    /// Per-row candidate list length: collisions are resolved from this
    /// list and fall back to a masked rescan only when all entries are
    /// claimed. Clamped to at least 1.
    pub k_best: usize,
    /// Candidate-generation machinery (see [`IndexMode`]).
    pub index: IndexMode,
    /// Partition cell count for the index modes; `0` = auto (`√N`,
    /// clamped to `[1, min(N, 4096)]`).
    pub cells: usize,
    /// Nearest cells always scanned before the cell bound may skip;
    /// `0` = auto (2 — scanning the runner-up cell tightens the k-best
    /// threshold faster than its cost on every pool measured). Purely a
    /// wall-time knob.
    pub probes: usize,
}

impl NlsConfig {
    /// The production configuration: quantized-index candidate
    /// generation over auto-sized cells, pruned scan fallbacks, and the
    /// worker count from `PATCHDB_THREADS` / available parallelism
    /// (capped at 16).
    pub fn auto() -> NlsConfig {
        NlsConfig {
            threads: par::configured_threads(16),
            prune: true,
            k_best: 8,
            index: IndexMode::Quantized,
            cells: 0,
            probes: 0,
        }
    }

    /// Single-threaded, unpruned, unindexed, no candidate lists — the
    /// closest configuration to the literal Algorithm 1 loop (used as
    /// the bench baseline).
    pub fn serial() -> NlsConfig {
        NlsConfig {
            threads: 1,
            prune: false,
            k_best: 1,
            index: IndexMode::Scan,
            cells: 0,
            probes: 0,
        }
    }

    /// Sets [`IndexMode`] (builder style).
    pub fn index(mut self, index: IndexMode) -> NlsConfig {
        self.index = index;
        self
    }
}

impl Default for NlsConfig {
    fn default() -> NlsConfig {
        NlsConfig::auto()
    }
}

/// Runs nearest link search matrix-free with the production (parallel,
/// pruned) configuration. See [`nearest_link_search_with`].
///
/// Returns `c`, where `c[m]` is the index of the wild patch linked to
/// security patch `m`. Every returned index is distinct.
///
/// # Panics
///
/// Panics when `wild.len() < security.len()` (the assignment needs at
/// least M distinct columns) or when `security` is empty.
pub fn nearest_link_search(security: &[FeatureVector], wild: &[FeatureVector]) -> Vec<usize> {
    nearest_link_search_with(security, wild, &NlsConfig::auto())
}

/// Runs nearest link search matrix-free under an explicit configuration.
///
/// Faithful to Algorithm 1: per-row minima `U`/`V` are initialized in one
/// (parallel, pruned) pass, then M iterations pick the global minimum
/// row, resolving column collisions from the row's k-best candidate list
/// with a masked rescan as the fallback (`l_{c_j} ← inf`). Worst-case
/// `O(M·N + M·C·N)` where `C` is the number of collisions that exhaust
/// their candidate list, matching the paper's `O(MN²)` bound without
/// materializing the `M×N` matrix. Output bytes are independent of
/// `config` — see the module docs for the equivalence argument.
///
/// # Panics
///
/// Panics when `wild.len() < security.len()` or `security` is empty.
pub fn nearest_link_search_with(
    security: &[FeatureVector],
    wild: &[FeatureVector],
    config: &NlsConfig,
) -> Vec<usize> {
    nearest_link_search_indexed(security, wild, config, None, None)
}

/// [`nearest_link_search_with`] against a prebuilt [`WildIndex`] and/or a
/// dead-row mask.
///
/// * `index` — a [`WildIndex`] built over this exact `wild` slice (the
///   augmentation driver builds one per pool and reuses it across rounds
///   while the learned weights stay identical). `None` builds one
///   internally when `config.index` asks for it.
/// * `dead` — rows excluded from the search entirely (`dead[n] == true`
///   never links). The returned indices still address the full `wild`
///   slice. Masking dead rows is byte-equivalent to physically
///   compacting the pool: distances are unchanged and the
///   `(d², index)` tie order is monotone under compaction.
///
/// # Panics
///
/// Panics when `security` is empty, when the non-dead row count is
/// smaller than `security.len()`, or when `index`/`dead` don't match
/// `wild` (wrong length, or a non-quantized index under
/// [`IndexMode::Quantized`]).
pub fn nearest_link_search_indexed(
    security: &[FeatureVector],
    wild: &[FeatureVector],
    config: &NlsConfig,
    index: Option<&WildIndex>,
    dead: Option<&[bool]>,
) -> Vec<usize> {
    assert!(!security.is_empty(), "no security patches to link from");
    let alive = match dead {
        Some(d) => {
            assert_eq!(d.len(), wild.len(), "dead mask length mismatch");
            d.iter().filter(|&&x| !x).count()
        }
        None => wild.len(),
    };
    assert!(
        alive >= security.len(),
        "wild pool ({} live rows) smaller than security set ({})",
        alive,
        security.len()
    );
    let ws = {
        let _s = obs::span("nls.prep");
        Workspace::new(security, wild, config, index, dead)
    };
    let lists = {
        let _s = obs::span("nls.init");
        ws.init_pass()
    };
    let _s = obs::span("nls.assign");
    ws.assign(lists)
}

/// The init pass alone (lines 1–3 of Algorithm 1): per-row minimum
/// squared distance `U` and argmin column `V`, under `config`.
///
/// Exposed for the `perf_nls_scale` bench so the serial/parallel/pruned
/// init variants can be timed in isolation; `U` holds squared distances.
///
/// # Panics
///
/// Panics when `security` or `wild` is empty.
pub fn row_minima(
    security: &[FeatureVector],
    wild: &[FeatureVector],
    config: &NlsConfig,
) -> (Vec<f64>, Vec<usize>) {
    assert!(!security.is_empty() && !wild.is_empty(), "empty NLS instance");
    let ws = Workspace::new(security, wild, config, None, None);
    let lists = ws.init_pass();
    lists.iter().map(|l| (l[0].0, l[0].1)).unzip()
}

/// [`row_minima`] against a prebuilt [`WildIndex`] — the query-phase
/// timing entry for the index modes in `perf_nls_scale` (building the
/// index is timed separately; the augmentation driver amortizes one
/// build across all rounds of a pool).
///
/// # Panics
///
/// Panics on an empty instance or an `index` not built over `wild`.
pub fn row_minima_indexed(
    security: &[FeatureVector],
    wild: &[FeatureVector],
    config: &NlsConfig,
    index: &WildIndex,
) -> (Vec<f64>, Vec<usize>) {
    assert!(!security.is_empty() && !wild.is_empty(), "empty NLS instance");
    let ws = Workspace::new(security, wild, config, Some(index), None);
    let lists = ws.init_pass();
    lists.iter().map(|l| (l[0].0, l[0].1)).unzip()
}

/// The faithful serial Algorithm 1 loop: one full `O(M·N)` init scan, a
/// `min_by` global argmin per iteration, and full-row masked rescans on
/// collision — no threads, no pruning, no candidate lists. Comparisons
/// use squared distances (exact; see the module docs), so this is the
/// reference the parallel+pruned path is property-tested against.
///
/// # Panics
///
/// Panics when `wild.len() < security.len()` or `security` is empty.
pub fn nearest_link_search_serial(
    security: &[FeatureVector],
    wild: &[FeatureVector],
) -> Vec<usize> {
    assert!(!security.is_empty(), "no security patches to link from");
    assert!(
        wild.len() >= security.len(),
        "wild pool ({}) smaller than security set ({})",
        wild.len(),
        security.len()
    );
    let m_count = security.len();

    // Lines 1–3: per-row minimum and argmin.
    let mut u = vec![f64::INFINITY; m_count];
    let mut v = vec![0usize; m_count];
    for (m, sec) in security.iter().enumerate() {
        for (n, w) in wild.iter().enumerate() {
            let d = squared_euclidean(sec, w);
            if d < u[m] {
                u[m] = d;
                v[m] = n;
            }
        }
    }

    // Lines 5–17: greedy global assignment with lazy collision rescans.
    // Assigned rows are masked out of the argmin rather than reset to ∞:
    // identical for finite inputs (a live row always beats ∞), and it
    // keeps NaN rows assignable (∞ orders *before* NaN under total_cmp,
    // so an ∞ sentinel would win the argmin forever).
    let mut c = vec![usize::MAX; m_count];
    let mut used = vec![false; wild.len()];
    let mut assigned = vec![false; m_count];
    for _ in 0..m_count {
        // m0 ← argmin U over live rows (first minimum wins; total_cmp
        // keeps NaN inputs from panicking).
        let m0 = u
            .iter()
            .enumerate()
            .filter(|(i, _)| !assigned[*i])
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("a live row remains");
        let mut n0 = v[m0];
        if used[n0] {
            // Rescan row m0 with used columns masked (lines 10–15).
            let mut best = f64::INFINITY;
            let mut best_n = usize::MAX;
            for (n, w) in wild.iter().enumerate() {
                if used[n] {
                    continue;
                }
                let d = squared_euclidean(&security[m0], w);
                if d < best {
                    best = d;
                    best_n = n;
                }
            }
            n0 = best_n;
        }
        c[m0] = n0;
        used[n0] = true;
        assigned[m0] = true;
    }
    c
}

/// A monomorphized observation hook for the distance scans. The scans
/// are generic over this trait so the production path with tracing off
/// runs [`NoProbe`], whose methods compile to nothing — the disabled
/// machine code is the uninstrumented loop, which is what keeps the
/// obs-off overhead of the init pass near zero (tracked in
/// BENCH_nls.json).
/// Every candidate column of a scan is accounted to exactly one of
/// `evaluated` / `pruned` / `masked` / `cells_skipped` /
/// `quant_rejected` — the per-round counter identity
/// `Σ = scans × pool_rows` that `tests/trace.rs` pins rests on this.
/// (`early_exited` and `reranked` annotate `evaluated` candidates and
/// sit outside the partition.)
pub(crate) trait Probe {
    /// A distance computation was started for a candidate.
    fn evaluated(&mut self);
    /// A started distance computation was abandoned by the partial-sum
    /// early exit.
    fn early_exited(&mut self);
    /// `n` candidates were skipped wholesale by the norm lower bound.
    fn pruned(&mut self, n: u64);
    /// `n` candidates were skipped because their column is claimed (or
    /// dead in a masked search).
    fn masked(&mut self, n: u64);
    /// `rows` candidates were skipped wholesale by the cell
    /// centroid-distance bound.
    fn cells_skipped(&mut self, rows: u64);
    /// A candidate was rejected by the quantized lower bound without
    /// touching its f64 data.
    fn quant_rejected(&mut self);
    /// A candidate survived the quantized bound and was re-ranked with
    /// the exact kernel (a subset of `evaluated`).
    fn reranked(&mut self);
}

/// The tracing-off probe: all no-ops.
pub(crate) struct NoProbe;

impl Probe for NoProbe {
    #[inline(always)]
    fn evaluated(&mut self) {}
    #[inline(always)]
    fn early_exited(&mut self) {}
    #[inline(always)]
    fn pruned(&mut self, _n: u64) {}
    #[inline(always)]
    fn masked(&mut self, _n: u64) {}
    #[inline(always)]
    fn cells_skipped(&mut self, _rows: u64) {}
    #[inline(always)]
    fn quant_rejected(&mut self) {}
    #[inline(always)]
    fn reranked(&mut self) {}
}

/// The tracing-on probe: plain local tallies, merged row-by-row in input
/// order (mirroring `fold_chunked`'s spawn-order combine) and flushed to
/// the `obs` registry once per pass.
#[derive(Default, Clone, Copy)]
struct ScanStats {
    evaluated: u64,
    early_exited: u64,
    pruned_norm: u64,
    masked: u64,
    cells_skipped: u64,
    quant_rejects: u64,
    exact_rerank: u64,
}

impl Probe for ScanStats {
    #[inline]
    fn evaluated(&mut self) {
        self.evaluated += 1;
    }
    #[inline]
    fn early_exited(&mut self) {
        self.early_exited += 1;
    }
    #[inline]
    fn pruned(&mut self, n: u64) {
        self.pruned_norm += n;
    }
    #[inline]
    fn masked(&mut self, n: u64) {
        self.masked += n;
    }
    #[inline]
    fn cells_skipped(&mut self, rows: u64) {
        self.cells_skipped += rows;
    }
    #[inline]
    fn quant_rejected(&mut self) {
        self.quant_rejects += 1;
    }
    #[inline]
    fn reranked(&mut self) {
        self.exact_rerank += 1;
    }
}

impl ScanStats {
    fn merge(&mut self, other: ScanStats) {
        self.evaluated += other.evaluated;
        self.early_exited += other.early_exited;
        self.pruned_norm += other.pruned_norm;
        self.masked += other.masked;
        self.cells_skipped += other.cells_skipped;
        self.quant_rejects += other.quant_rejects;
        self.exact_rerank += other.exact_rerank;
    }

    /// Adds the tallies to the global `nls.*` counters.
    fn flush(&self) {
        obs::counter_add("nls.dist_evaluated", self.evaluated);
        obs::counter_add("nls.dist_early_exit", self.early_exited);
        obs::counter_add("nls.pruned_norm", self.pruned_norm);
        obs::counter_add("nls.masked_skipped", self.masked);
        obs::counter_add("nls.cells_skipped", self.cells_skipped);
        obs::counter_add("nls.quant_rejects", self.quant_rejects);
        obs::counter_add("nls.exact_rerank", self.exact_rerank);
    }
}

/// The index of one search: borrowed from the caller (the augmentation
/// driver reuses one across rounds) or built for this invocation.
enum IndexHandle<'a> {
    Owned(Box<WildIndex>),
    Borrowed(&'a WildIndex),
}

impl IndexHandle<'_> {
    fn get(&self) -> &WildIndex {
        match self {
            IndexHandle::Owned(ix) => ix,
            IndexHandle::Borrowed(ix) => ix,
        }
    }
}

/// Shared state of one search invocation: the inputs plus (when pruning)
/// per-vector norms and the wild indices sorted by norm, or (in the
/// index modes) the partitioned/quantized pool snapshot.
struct Workspace<'a> {
    security: &'a [FeatureVector],
    wild: &'a [FeatureVector],
    k_best: usize,
    threads: usize,
    prune: bool,
    /// Partition index (index modes only).
    index: Option<IndexHandle<'a>>,
    /// Whether cell scans take the quantized fast path.
    quantized: bool,
    /// Nearest cells always scanned before the cell bound applies.
    probes: usize,
    /// Rows excluded from the search entirely (masked searches).
    dead: Option<&'a [bool]>,
    /// `‖security[m]‖` per row (pruning only).
    sec_norms: Vec<f64>,
    /// Wild indices sorted by `(norm, index)` ascending (pruning only).
    order: Vec<usize>,
    /// `‖wild[order[i]]‖`, aligned with `order` (pruning only).
    sorted_norms: Vec<f64>,
    /// `wild[order[i]]`, physically reordered (pruning only): the
    /// outward scan then reads two sequential streams instead of hopping
    /// around the original array, which at 100K-patch pool sizes is the
    /// difference between prefetched loads and a cache miss per
    /// candidate.
    sorted_wild: Vec<FeatureVector>,
}

impl<'a> Workspace<'a> {
    fn new(
        security: &'a [FeatureVector],
        wild: &'a [FeatureVector],
        config: &NlsConfig,
        prebuilt: Option<&'a WildIndex>,
        dead: Option<&'a [bool]>,
    ) -> Self {
        let threads = config.threads.max(1);
        let index = match (config.index, prebuilt) {
            (IndexMode::Scan, _) => None,
            (mode, Some(ix)) => {
                assert_eq!(ix.len(), wild.len(), "index was built over a different pool");
                assert!(
                    mode != IndexMode::Quantized || ix.is_quantized(),
                    "IndexMode::Quantized needs a quantized index"
                );
                Some(IndexHandle::Borrowed(ix))
            }
            (_, None) => Some(IndexHandle::Owned(Box::new(WildIndex::build(wild, config)))),
        };
        // The norm-pruning machinery serves the Scan mode only; the
        // index modes bound candidates through the partition instead.
        let prune = config.prune && index.is_none();
        let (sec_norms, order, sorted_norms, sorted_wild) = if prune {
            let sec_norms = par::map_chunked(security, threads, |v| norm(v));
            let wild_norms = par::map_chunked(wild, threads, |v| norm(v));
            let mut order: Vec<usize> = (0..wild.len()).collect();
            order.sort_by(|&a, &b| wild_norms[a].total_cmp(&wild_norms[b]).then(a.cmp(&b)));
            let sorted_norms: Vec<f64> = order.iter().map(|&i| wild_norms[i]).collect();
            let sorted_wild: Vec<FeatureVector> = order.iter().map(|&i| wild[i]).collect();
            (sec_norms, order, sorted_norms, sorted_wild)
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };
        Workspace {
            security,
            wild,
            k_best: config.k_best.max(1),
            threads,
            prune,
            quantized: config.index == IndexMode::Quantized,
            probes: if config.probes == 0 { 2 } else { config.probes },
            index,
            dead,
            sec_norms,
            order,
            sorted_norms,
            sorted_wild,
        }
    }

    /// Per-row k-best candidate lists, rows fanned across threads.
    ///
    /// With tracing on, each row also returns its scan tallies; the rows
    /// come back in input order (`map_chunked_indexed` reassembles them
    /// that way), so the per-worker shards are merged in spawn order —
    /// deterministically — before one flush into the registry.
    fn init_pass(&self) -> Vec<Vec<(f64, usize)>> {
        if !obs::enabled() {
            return par::map_chunked_indexed(self.security, self.threads, |m, _| {
                self.scan_row(m, self.dead, &mut NoProbe)
            });
        }
        let rows: Vec<(Vec<(f64, usize)>, ScanStats)> =
            par::map_chunked_indexed(self.security, self.threads, |m, _| {
                let mut stats = ScanStats::default();
                let list = self.scan_row(m, self.dead, &mut stats);
                (list, stats)
            });
        let mut total = ScanStats::default();
        let mut per_row = obs::Hist::default();
        let mut lists = Vec::with_capacity(rows.len());
        for (list, stats) in rows {
            total.merge(stats);
            per_row.record(stats.evaluated);
            lists.push(list);
        }
        total.flush();
        obs::counter_add("nls.rows", lists.len() as u64);
        obs::hist_merge("nls.row_dist_evaluated", &per_row);
        lists
    }

    /// The k smallest `(d², index)` pairs of row `m`, optionally skipping
    /// claimed columns. Visit-order independent by the lexicographic tie
    /// rule, so the pruned and plain scans agree exactly.
    fn scan_row<P: Probe>(&self, m: usize, used: Option<&[bool]>, probe: &mut P) -> Vec<(f64, usize)> {
        if let Some(ix) = &self.index {
            return ix.get().scan_row(
                &self.security[m],
                self.k_best,
                self.probes,
                used,
                self.quantized,
                probe,
            );
        }
        if self.prune {
            self.scan_row_pruned(m, used, probe)
        } else {
            self.scan_row_plain(m, used, probe)
        }
    }

    fn scan_row_plain<P: Probe>(
        &self,
        m: usize,
        used: Option<&[bool]>,
        probe: &mut P,
    ) -> Vec<(f64, usize)> {
        let sec = &self.security[m];
        let mut list: Vec<(f64, usize)> = Vec::with_capacity(self.k_best);
        for (n, w) in self.wild.iter().enumerate() {
            if used.is_some_and(|u| u[n]) {
                probe.masked(1);
                continue;
            }
            probe.evaluated();
            push_candidate(&mut list, self.k_best, squared_euclidean(sec, w), n);
        }
        list
    }

    fn scan_row_pruned<P: Probe>(
        &self,
        m: usize,
        used: Option<&[bool]>,
        probe: &mut P,
    ) -> Vec<(f64, usize)> {
        let sec = &self.security[m];
        let sn = self.sec_norms[m];
        let n_count = self.order.len();
        let mut list: Vec<(f64, usize)> = Vec::with_capacity(self.k_best);

        // Expand outward from the security row's position in the norm
        // ordering; each side stops for good once its norm gap alone
        // proves every remaining candidate is a loser.
        let start = self.sorted_norms.partition_point(|&w| w < sn);
        let mut left = start;
        let mut right = start;
        loop {
            let tau = threshold(&list, self.k_best);
            let left_gap = if left > 0 { Some(sn - self.sorted_norms[left - 1]) } else { None };
            let right_gap =
                if right < n_count { Some(self.sorted_norms[right] - sn) } else { None };
            let (pos, gap, from_left) = match (left_gap, right_gap) {
                (Some(lg), Some(rg)) if lg <= rg => (left - 1, lg, true),
                (Some(lg), None) => (left - 1, lg, true),
                (_, Some(rg)) => (right, rg, false),
                (None, None) => break,
            };
            if gap * gap * PRUNE_SLACK > tau {
                // The gap only grows in this direction; retire the side.
                if from_left {
                    probe.pruned(left as u64);
                    left = 0;
                    if right >= n_count {
                        break;
                    }
                } else {
                    probe.pruned((n_count - right) as u64);
                    right = n_count;
                    if left == 0 {
                        break;
                    }
                }
                continue;
            }
            let idx = self.order[pos];
            if used.is_some_and(|u| u[idx]) {
                probe.masked(1);
            } else {
                probe.evaluated();
                match early_exit_d2(sec, &self.sorted_wild[pos], tau) {
                    Some(d2) => push_candidate(&mut list, self.k_best, d2, idx),
                    None => probe.early_exited(),
                }
            }
            if from_left {
                left -= 1;
            } else {
                right += 1;
            }
        }
        list
    }

    /// Masked full rescan of row `m` (Algorithm 1 lines 10–15): the
    /// minimum `(d², index)` over unclaimed columns.
    fn rescan<P: Probe>(&self, m: usize, used: &[bool], probe: &mut P) -> usize {
        let saved = self.scan_row(m, Some(used), probe);
        saved.first().map(|&(_, n)| n).expect("rescan with no unclaimed columns")
    }

    /// Lines 5–17: the greedy global assignment, sequential by design.
    fn assign(&self, lists: Vec<Vec<(f64, usize)>>) -> Vec<usize> {
        let m_count = lists.len();
        // U keeps each row's *initial* minimum until the row is assigned
        // (lazy staleness, exactly as the serial loop behaves); assigned
        // rows leave the argmin via the mask, matching the serial loop.
        let u: Vec<f64> = lists.iter().map(|l| l[0].0).collect();
        let mut cursor = vec![0usize; m_count];
        let mut c = vec![usize::MAX; m_count];
        // Dead rows start out "claimed": the rescans skip them exactly
        // like columns claimed earlier in the loop.
        let mut used = match self.dead {
            Some(d) => d.to_vec(),
            None => vec![false; self.wild.len()],
        };
        let mut assigned = vec![false; m_count];
        // Collision bookkeeping: local tallies (the adds are trivial next
        // to the rescans they count), flushed iff tracing is on. Rescans
        // are rare fallbacks, so counting inside them is equally cheap.
        let mut kbest_hits = 0u64;
        let mut rescans = 0u64;
        let mut rescan_stats = ScanStats::default();
        for _ in 0..m_count {
            // m0 ← argmin U over live rows, first minimum wins (NaN-safe
            // via total_cmp).
            let mut m0 = usize::MAX;
            for i in 0..m_count {
                if assigned[i] {
                    continue;
                }
                if m0 == usize::MAX || u[i].total_cmp(&u[m0]) == std::cmp::Ordering::Less {
                    m0 = i;
                }
            }
            // Claimed columns stay claimed, so the cursor only advances.
            let list = &lists[m0];
            let mut cur = cursor[m0];
            while cur < list.len() && used[list[cur].1] {
                cur += 1;
            }
            cursor[m0] = cur;
            let n0 = if cur < list.len() {
                kbest_hits += 1;
                list[cur].1
            } else {
                rescans += 1;
                self.rescan(m0, &used, &mut rescan_stats)
            };
            c[m0] = n0;
            used[n0] = true;
            assigned[m0] = true;
        }
        if obs::enabled() {
            obs::counter_add("nls.kbest_hits", kbest_hits);
            obs::counter_add("nls.rescans", rescans);
            obs::counter_add("nls.links", m_count as u64);
            rescan_stats.flush();
        }
        c
    }
}

/// `‖v‖` — used only for the pruning lower bound, never for output
/// values.
pub(crate) fn norm(v: &FeatureVector) -> f64 {
    v.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// The current pruning threshold: the k-th best squared distance once
/// the list is full, else ∞.
pub(crate) fn threshold(list: &[(f64, usize)], k: usize) -> f64 {
    if list.len() == k { list[k - 1].0 } else { f64::INFINITY }
}

/// Squared distance with early exit: accumulates in exactly the
/// [`squared_euclidean`] summation order, abandoning once the partial sum
/// strictly exceeds `tau` (squares are non-negative, so the final sum
/// could only be larger — and a candidate at exactly `tau` may still win
/// an index tie, hence the strict comparison).
pub(crate) fn early_exit_d2(a: &FeatureVector, b: &FeatureVector, tau: f64) -> Option<f64> {
    let mut acc = 0.0f64;
    let xs = a.as_slice();
    let ys = b.as_slice();
    let mut i = 0;
    while i < xs.len() {
        let end = (i + EARLY_EXIT_STRIDE).min(xs.len());
        while i < end {
            let d = xs[i] - ys[i];
            acc += d * d;
            i += 1;
        }
        if acc > tau {
            return None;
        }
    }
    Some(acc)
}

/// Inserts `(d2, idx)` into an ascending k-best list under lexicographic
/// `(d², index)` order, dropping the worst entry when over capacity.
///
/// Ordering uses `total_cmp`, which agrees with the operator comparisons
/// for every value a squared distance can take (sums of squares are
/// never `-0.0`) and additionally gives NaN a fixed place *after* every
/// finite value — so a NaN candidate sinks to the tail no matter in
/// which order the scan happened to visit it, instead of wedging at the
/// head and shadowing real neighbors.
pub(crate) fn push_candidate(list: &mut Vec<(f64, usize)>, k: usize, d2: f64, idx: usize) {
    let beats = |&(ld, li): &(f64, usize)| match d2.total_cmp(&ld) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => idx < li,
        std::cmp::Ordering::Greater => false,
    };
    if list.len() == k && !beats(&list[k - 1]) {
        return;
    }
    let pos = list.iter().position(beats).unwrap_or(list.len());
    list.insert(pos, (d2, idx));
    if list.len() > k {
        list.pop();
    }
}

/// Reference implementation over an explicit distance matrix
/// `d[m][n]` — used to cross-check the matrix-free version and by the
/// ablation benches. Feed it squared distances to compare against
/// [`nearest_link_search`] exactly (the comparison space must match).
///
/// # Panics
///
/// Panics on an empty or ragged matrix, or when there are fewer columns
/// than rows.
pub fn nearest_link_search_matrix(d: &[Vec<f64>]) -> Vec<usize> {
    let m_count = d.len();
    assert!(m_count > 0, "empty distance matrix");
    let n_count = d[0].len();
    assert!(d.iter().all(|row| row.len() == n_count), "ragged matrix");
    assert!(n_count >= m_count, "need at least M columns");

    let mut u: Vec<f64> = Vec::with_capacity(m_count);
    let mut v: Vec<usize> = Vec::with_capacity(m_count);
    for row in d {
        let (n, val) = row
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty row");
        u.push(*val);
        v.push(n);
    }

    let mut c = vec![usize::MAX; m_count];
    let mut used = vec![false; n_count];
    let mut assigned = vec![false; m_count];
    for _ in 0..m_count {
        let m0 = u
            .iter()
            .enumerate()
            .filter(|(i, _)| !assigned[*i])
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("a live row remains");
        let mut n0 = v[m0];
        if used[n0] {
            let mut best = f64::INFINITY;
            let mut best_n = usize::MAX;
            for (n, dv) in d[m0].iter().enumerate() {
                if !used[n] && *dv < best {
                    best = *dv;
                    best_n = n;
                }
            }
            n0 = best_n;
        }
        c[m0] = n0;
        used[n0] = true;
        assigned[m0] = true;
    }
    c
}

/// Total distance of a set of links — the objective Algorithm 1 greedily
/// minimizes (reported as a true Euclidean distance, not squared).
pub fn total_link_distance(
    security: &[FeatureVector],
    wild: &[FeatureVector],
    links: &[usize],
) -> f64 {
    security
        .iter()
        .zip(links)
        .map(|(s, &n)| patchdb_features::euclidean(s, &wild[n]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb_rt::rng::Xoshiro256pp;

    fn fv(vals: &[f64]) -> FeatureVector {
        let mut v = FeatureVector::zero();
        v.as_mut_slice()[..vals.len()].copy_from_slice(vals);
        v
    }

    #[test]
    fn simple_assignment() {
        let sec = vec![fv(&[0.0]), fv(&[10.0])];
        let wild = vec![fv(&[9.5]), fv(&[0.2]), fv(&[50.0])];
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links, vec![1, 0]);
    }

    #[test]
    fn collision_resolution_prefers_closer_link() {
        // Both security patches are nearest to wild 0; the closer one
        // (processed first, as the global minimum) claims it.
        let sec = vec![fv(&[0.0]), fv(&[0.3])];
        let wild = vec![fv(&[0.1]), fv(&[1.0])];
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links[0], 0); // distance 0.1 wins the global argmin
        assert_eq!(links[1], 1); // rescan lands on the remaining column
    }

    #[test]
    fn links_are_distinct() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let sec: Vec<FeatureVector> =
            (0..40).map(|_| fv(&[rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])).collect();
        let wild: Vec<FeatureVector> =
            (0..200).map(|_| fv(&[rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])).collect();
        let links = nearest_link_search(&sec, &wild);
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), links.len(), "duplicate link");
    }

    #[test]
    fn matrix_free_matches_matrix_version() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let sec: Vec<FeatureVector> =
            (0..25).map(|_| fv(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen()])).collect();
        let wild: Vec<FeatureVector> =
            (0..120).map(|_| fv(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen()])).collect();
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
            .collect();
        assert_eq!(nearest_link_search(&sec, &wild), nearest_link_search_matrix(&matrix));
    }

    #[test]
    fn all_configs_agree_with_the_serial_reference() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        // Duplicated points force exact distance ties and collisions.
        let palette: Vec<FeatureVector> =
            (0..12).map(|_| fv(&[rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)])).collect();
        let sec: Vec<FeatureVector> =
            (0..30).map(|_| palette[rng.gen_range(0..palette.len() as u64) as usize]).collect();
        let wild: Vec<FeatureVector> =
            (0..90).map(|_| palette[rng.gen_range(0..palette.len() as u64) as usize]).collect();
        let reference = nearest_link_search_serial(&sec, &wild);
        for index in [IndexMode::Scan, IndexMode::Partitioned, IndexMode::Quantized] {
            for threads in [1usize, 2, 8] {
                for prune in [false, true] {
                    for k_best in [1usize, 2, 8] {
                        let cfg = NlsConfig {
                            threads,
                            prune,
                            k_best,
                            index,
                            ..NlsConfig::serial()
                        };
                        assert_eq!(
                            nearest_link_search_with(&sec, &wild, &cfg),
                            reference,
                            "index={index:?} threads={threads} prune={prune} k_best={k_best}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_minima_matches_serial_init() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let sec: Vec<FeatureVector> =
            (0..20).map(|_| fv(&[rng.gen_range(-3.0..3.0), rng.gen()])).collect();
        let wild: Vec<FeatureVector> =
            (0..150).map(|_| fv(&[rng.gen_range(-3.0..3.0), rng.gen()])).collect();
        let (serial_u, serial_v) = row_minima(&sec, &wild, &NlsConfig::serial());
        for cfg in [
            NlsConfig { threads: 4, prune: false, k_best: 8, ..NlsConfig::serial() },
            NlsConfig { threads: 4, prune: true, k_best: 8, ..NlsConfig::serial() },
            NlsConfig { threads: 1, prune: true, k_best: 2, ..NlsConfig::serial() },
            NlsConfig { index: IndexMode::Partitioned, k_best: 8, ..NlsConfig::serial() },
            NlsConfig { index: IndexMode::Quantized, threads: 4, k_best: 8, ..NlsConfig::serial() },
        ] {
            let (u, v) = row_minima(&sec, &wild, &cfg);
            assert_eq!(serial_v, v, "argmin drift under {cfg:?}");
            for (a, b) in serial_u.iter().zip(&u) {
                assert_eq!(a.to_bits(), b.to_bits(), "distance drift under {cfg:?}");
            }
        }
    }

    #[test]
    fn nan_features_do_not_panic() {
        // A NaN feature must not crash the argmin (total_cmp orders NaN
        // after infinity); links stay valid and distinct.
        let mut bad = fv(&[1.0, 2.0]);
        bad.as_mut_slice()[2] = f64::NAN;
        let sec = vec![fv(&[0.0, 0.0]), bad];
        let wild = vec![fv(&[0.1, 0.0]), fv(&[5.0, 5.0]), bad];
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links.len(), 2);
        assert_ne!(links[0], links[1]);
        assert!(links.iter().all(|&n| n < wild.len()));
    }

    #[test]
    fn greedy_total_close_to_exhaustive_on_tiny_instances() {
        // For 3×5 instances, compare against the optimal assignment by
        // brute-force permutation enumeration.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..20 {
            let sec: Vec<FeatureVector> = (0..3).map(|_| fv(&[rng.gen(), rng.gen()])).collect();
            let wild: Vec<FeatureVector> = (0..5).map(|_| fv(&[rng.gen(), rng.gen()])).collect();
            let links = nearest_link_search(&sec, &wild);
            let greedy = total_link_distance(&sec, &wild, &links);

            let mut best = f64::INFINITY;
            for a in 0..5 {
                for b in 0..5 {
                    for c in 0..5 {
                        if a != b && b != c && a != c {
                            best = best.min(total_link_distance(&sec, &wild, &[a, b, c]));
                        }
                    }
                }
            }
            // The paper uses an *approximately* optimal greedy; allow 50%
            // slack but require the same order of magnitude.
            assert!(greedy <= best * 1.5 + 1e-9, "greedy {greedy} vs optimal {best}");
        }
    }

    #[test]
    #[should_panic(expected = "wild pool")]
    fn rejects_small_pool() {
        nearest_link_search(&[fv(&[0.0]), fv(&[1.0])], &[fv(&[0.0])]);
    }

    #[test]
    fn exact_pool_size_assigns_everything() {
        let sec = vec![fv(&[0.0]), fv(&[5.0]), fv(&[9.0])];
        let wild = vec![fv(&[8.8]), fv(&[0.1]), fv(&[5.2])];
        let links = nearest_link_search(&sec, &wild);
        let mut all = links.clone();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn push_candidate_keeps_lexicographic_k_best() {
        let mut list = Vec::new();
        push_candidate(&mut list, 2, 4.0, 7);
        push_candidate(&mut list, 2, 1.0, 9);
        push_candidate(&mut list, 2, 4.0, 3); // ties on d², smaller index wins
        assert_eq!(list, vec![(1.0, 9), (4.0, 3)]);
        push_candidate(&mut list, 2, 4.0, 5); // worse than both — dropped
        assert_eq!(list, vec![(1.0, 9), (4.0, 3)]);
        push_candidate(&mut list, 2, 0.5, 1);
        assert_eq!(list, vec![(0.5, 1), (1.0, 9)]);
    }

    #[test]
    fn early_exit_matches_full_sum_when_completed() {
        let a = fv(&[1.0, -2.0, 3.5, 0.25]);
        let b = fv(&[-0.5, 2.0, 3.0, 4.0]);
        let full = squared_euclidean(&a, &b);
        let computed = early_exit_d2(&a, &b, f64::INFINITY).unwrap();
        assert_eq!(full.to_bits(), computed.to_bits());
        // A threshold below the final value abandons the candidate.
        assert_eq!(early_exit_d2(&a, &b, full * 0.5), None);
        // A threshold exactly at the final value must NOT abandon it (the
        // candidate may still win an index tie).
        assert_eq!(early_exit_d2(&a, &b, full), Some(full));
    }
}
