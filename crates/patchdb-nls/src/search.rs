//! Algorithm 1: the nearest link search.
//!
//! Given M verified security patches and N wild patches in the weighted
//! feature space, find for each security patch one *distinct* wild patch
//! ("link") such that the total link distance is (greedily) minimized.
//! Unlike k-NN, each wild patch may be claimed at most once — the paper is
//! explicit about this distinction (Section III-B-3).

use patchdb_features::{euclidean, FeatureVector};

/// Runs nearest link search matrix-free.
///
/// Faithful to Algorithm 1: per-row minima `U`/`V` are initialized in one
/// pass, then M iterations pick the global minimum row, resolving column
/// collisions by rescanning that row with claimed columns masked
/// (`l_{c_j} ← inf`). Worst-case `O(M·N + M·C·N)` where `C` is the number
/// of collisions (`≤ M`), matching the paper's `O(MN²)` bound without
/// materializing the `M×N` matrix.
///
/// Returns `c`, where `c[m]` is the index of the wild patch linked to
/// security patch `m`. Every returned index is distinct.
///
/// # Panics
///
/// Panics when `wild.len() < security.len()` (the assignment needs at
/// least M distinct columns) or when `security` is empty.
pub fn nearest_link_search(security: &[FeatureVector], wild: &[FeatureVector]) -> Vec<usize> {
    assert!(!security.is_empty(), "no security patches to link from");
    assert!(
        wild.len() >= security.len(),
        "wild pool ({}) smaller than security set ({})",
        wild.len(),
        security.len()
    );
    let m_count = security.len();

    // Lines 1–3: per-row minimum and argmin.
    let mut u = vec![f64::INFINITY; m_count];
    let mut v = vec![0usize; m_count];
    for (m, sec) in security.iter().enumerate() {
        for (n, w) in wild.iter().enumerate() {
            let d = euclidean(sec, w);
            if d < u[m] {
                u[m] = d;
                v[m] = n;
            }
        }
    }

    // Lines 5–17: greedy global assignment with lazy collision rescans.
    let mut c = vec![usize::MAX; m_count];
    let mut used = vec![false; wild.len()];
    for _ in 0..m_count {
        // m0 ← argmin U
        let m0 = u
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
            .map(|(i, _)| i)
            .expect("non-empty U");
        let mut n0 = v[m0];
        if used[n0] {
            // Rescan row m0 with used columns masked (lines 10–15).
            let mut best = f64::INFINITY;
            let mut best_n = usize::MAX;
            for (n, w) in wild.iter().enumerate() {
                if used[n] {
                    continue;
                }
                let d = euclidean(&security[m0], w);
                if d < best {
                    best = d;
                    best_n = n;
                }
            }
            n0 = best_n;
        }
        c[m0] = n0;
        used[n0] = true;
        u[m0] = f64::INFINITY;
    }
    c
}

/// Reference implementation over an explicit distance matrix
/// `d[m][n]` — used to cross-check the matrix-free version and by the
/// ablation benches.
///
/// # Panics
///
/// Panics on an empty or ragged matrix, or when there are fewer columns
/// than rows.
pub fn nearest_link_search_matrix(d: &[Vec<f64>]) -> Vec<usize> {
    let m_count = d.len();
    assert!(m_count > 0, "empty distance matrix");
    let n_count = d[0].len();
    assert!(d.iter().all(|row| row.len() == n_count), "ragged matrix");
    assert!(n_count >= m_count, "need at least M columns");

    let mut u: Vec<f64> = Vec::with_capacity(m_count);
    let mut v: Vec<usize> = Vec::with_capacity(m_count);
    for row in d {
        let (n, val) = row
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty row");
        u.push(*val);
        v.push(n);
    }

    let mut c = vec![usize::MAX; m_count];
    let mut used = vec![false; n_count];
    for _ in 0..m_count {
        let m0 = u
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty U");
        let mut n0 = v[m0];
        if used[n0] {
            let mut best = f64::INFINITY;
            let mut best_n = usize::MAX;
            for (n, dv) in d[m0].iter().enumerate() {
                if !used[n] && *dv < best {
                    best = *dv;
                    best_n = n;
                }
            }
            n0 = best_n;
        }
        c[m0] = n0;
        used[n0] = true;
        u[m0] = f64::INFINITY;
    }
    c
}

/// Total distance of a set of links — the objective Algorithm 1 greedily
/// minimizes.
pub fn total_link_distance(
    security: &[FeatureVector],
    wild: &[FeatureVector],
    links: &[usize],
) -> f64 {
    security
        .iter()
        .zip(links)
        .map(|(s, &n)| euclidean(s, &wild[n]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb_rt::rng::Xoshiro256pp;

    fn fv(vals: &[f64]) -> FeatureVector {
        let mut v = FeatureVector::zero();
        v.as_mut_slice()[..vals.len()].copy_from_slice(vals);
        v
    }

    #[test]
    fn simple_assignment() {
        let sec = vec![fv(&[0.0]), fv(&[10.0])];
        let wild = vec![fv(&[9.5]), fv(&[0.2]), fv(&[50.0])];
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links, vec![1, 0]);
    }

    #[test]
    fn collision_resolution_prefers_closer_link() {
        // Both security patches are nearest to wild 0; the closer one
        // (processed first, as the global minimum) claims it.
        let sec = vec![fv(&[0.0]), fv(&[0.3])];
        let wild = vec![fv(&[0.1]), fv(&[1.0])];
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links[0], 0); // distance 0.1 wins the global argmin
        assert_eq!(links[1], 1); // rescan lands on the remaining column
    }

    #[test]
    fn links_are_distinct() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let sec: Vec<FeatureVector> =
            (0..40).map(|_| fv(&[rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])).collect();
        let wild: Vec<FeatureVector> =
            (0..200).map(|_| fv(&[rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])).collect();
        let links = nearest_link_search(&sec, &wild);
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), links.len(), "duplicate link");
    }

    #[test]
    fn matrix_free_matches_matrix_version() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let sec: Vec<FeatureVector> =
            (0..25).map(|_| fv(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen()])).collect();
        let wild: Vec<FeatureVector> =
            (0..120).map(|_| fv(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen()])).collect();
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| patchdb_features::euclidean(s, w)).collect())
            .collect();
        assert_eq!(nearest_link_search(&sec, &wild), nearest_link_search_matrix(&matrix));
    }

    #[test]
    fn greedy_total_close_to_exhaustive_on_tiny_instances() {
        // For 3×5 instances, compare against the optimal assignment by
        // brute-force permutation enumeration.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..20 {
            let sec: Vec<FeatureVector> = (0..3).map(|_| fv(&[rng.gen(), rng.gen()])).collect();
            let wild: Vec<FeatureVector> = (0..5).map(|_| fv(&[rng.gen(), rng.gen()])).collect();
            let links = nearest_link_search(&sec, &wild);
            let greedy = total_link_distance(&sec, &wild, &links);

            let mut best = f64::INFINITY;
            for a in 0..5 {
                for b in 0..5 {
                    for c in 0..5 {
                        if a != b && b != c && a != c {
                            best = best.min(total_link_distance(&sec, &wild, &[a, b, c]));
                        }
                    }
                }
            }
            // The paper uses an *approximately* optimal greedy; allow 50%
            // slack but require the same order of magnitude.
            assert!(greedy <= best * 1.5 + 1e-9, "greedy {greedy} vs optimal {best}");
        }
    }

    #[test]
    #[should_panic(expected = "wild pool")]
    fn rejects_small_pool() {
        nearest_link_search(&[fv(&[0.0]), fv(&[1.0])], &[fv(&[0.0])]);
    }

    #[test]
    fn exact_pool_size_assigns_everything() {
        let sec = vec![fv(&[0.0]), fv(&[5.0]), fv(&[9.0])];
        let wild = vec![fv(&[8.8]), fv(&[0.1]), fv(&[5.2])];
        let links = nearest_link_search(&sec, &wild);
        let mut all = links.clone();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }
}
