//! The multi-round human-in-the-loop dataset augmentation driver behind
//! Table II: nearest link search → manual verification → loop judgment.
//!
//! The driver maintains the round state incrementally instead of
//! recomputing it from scratch: the security-set `max|a_ij|` statistic
//! only grows (rows are only appended), so it is merged forward; the
//! pool statistic is refolded in parallel over the live rows; and the
//! weighted feature buffers are reused whenever the learned weights did
//! not change between rounds. Claimed candidates never leave the pool
//! buffers — they are masked out through a dead-row bitmap instead, which
//! keeps row indices stable so the [`WildIndex`] built over the weighted
//! pool survives from round to round (it is only rebuilt when the learned
//! weights actually change, which stops happening once the per-feature
//! maxima saturate). All of it is bitwise-equivalent to the naive
//! clone-reweight-compact-everything loop because elementwise `max` of
//! absolute values is associative and commutative, `apply_weights` is a
//! pure per-row function, and masking is byte-equivalent to compaction
//! (distances are unchanged and the `(d², index)` tie order is monotone
//! under compaction).

use patchdb_features::{
    apply_weights, max_abs, merge_max_abs, weights_from_max_abs, FeatureVector, Weights,
    FEATURE_DIM,
};
use patchdb_rt::{obs, par};

use crate::index::WildIndex;
use crate::search::{nearest_link_search_indexed, IndexMode, NlsConfig};

/// One unlabeled pool ("Set I/II/III" in Table II) and how many rounds to
/// run over it.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Display name (e.g. `"Set I: 100K"`).
    pub name: String,
    /// Indices (into the caller's wild universe) of the pool members.
    pub members: Vec<usize>,
    /// Number of augmentation rounds over this pool.
    pub rounds: usize,
}

/// Outcome of one augmentation round — one row of Table II.
#[derive(Debug, Clone)]
pub struct AugmentationRound {
    /// Pool name the round ran in.
    pub pool: String,
    /// 1-based global round number.
    pub round: usize,
    /// Search range (unlabeled patches at the start of the round).
    pub search_range: usize,
    /// Candidates selected by nearest link search (= |known security|).
    pub candidates: usize,
    /// Candidates the oracle verified as security patches.
    pub verified_security: usize,
    /// `verified_security / candidates`.
    pub ratio: f64,
}

/// Global `nls.*` counters banked per round under
/// `nls.roundNN.<suffix>`. Order is irrelevant (each is snapshot/delta'd
/// independently); `tests/trace.rs` pins the accounting identity
/// `dist_evaluated + pruned_norm + masked_skipped + cells_skipped +
/// quant_rejects == (rows + rescans) × pool_rows` over them.
const ROUND_COUNTERS: [&str; 8] = [
    "nls.dist_evaluated",
    "nls.pruned_norm",
    "nls.masked_skipped",
    "nls.cells_skipped",
    "nls.quant_rejects",
    "nls.exact_rerank",
    "nls.rows",
    "nls.rescans",
];

/// Runs the Table II augmentation protocol with the production NLS
/// configuration ([`NlsConfig::auto`]). See [`augment_rounds_with`].
pub fn augment_rounds<F>(
    seed_features: &[FeatureVector],
    wild_features: &[FeatureVector],
    pools: &[PoolSpec],
    verify: F,
) -> (Vec<AugmentationRound>, Vec<usize>, Vec<usize>)
where
    F: FnMut(usize) -> bool,
{
    augment_rounds_with(seed_features, wild_features, pools, &NlsConfig::auto(), verify)
}

/// Runs the Table II augmentation protocol.
///
/// * `seed_features` — feature vectors of the initial (NVD) security set;
/// * `wild_features` — feature vectors of the whole wild universe, indexed
///   by the ids used in `pools`;
/// * `pools` — the unlabeled sets and their round counts, processed in
///   order;
/// * `config` — the nearest-link-search configuration; the index mode
///   picks the candidate-generation machinery (output is identical in
///   every mode);
/// * `verify` — the manual-verification oracle: given a wild index,
///   returns whether the commit is a security patch.
///
/// Per round: weights are (re)learned over the live population (Section
/// III-B-2 normalizes per feature), nearest link search selects one
/// candidate per known security patch, every candidate is verified,
/// verified positives join the security set, and **all** verified
/// candidates leave the pool (negatives become cleaned non-security
/// data). Returns the per-round rows plus the final security/non-security
/// index partitions.
///
/// Candidates are verified in ascending pool-index order (the links are
/// distinct by construction, so sorting them *is* the deterministic
/// claimed order); the oracle is always called serially.
pub fn augment_rounds_with<F>(
    seed_features: &[FeatureVector],
    wild_features: &[FeatureVector],
    pools: &[PoolSpec],
    config: &NlsConfig,
    mut verify: F,
) -> (Vec<AugmentationRound>, Vec<usize>, Vec<usize>)
where
    F: FnMut(usize) -> bool,
{
    let threads = config.threads.max(1);
    let mut security: Vec<FeatureVector> = seed_features.to_vec();
    let mut security_idx: Vec<usize> = Vec::new(); // wild indices verified positive
    let mut nonsecurity_idx: Vec<usize> = Vec::new();
    let mut rows = Vec::new();
    let mut round_no = 0usize;

    // `max_i |a_ij|` over the security set: rows are only ever appended,
    // so this statistic is monotone and can be merged forward.
    let mut sec_max = max_abs(security.iter());

    for pool_spec in pools {
        // The pool buffers are never compacted: claimed rows flip their
        // `alive` bit and the search masks them out, so indices stay
        // stable for the reusable index below.
        let pool: Vec<usize> = pool_spec.members.clone();
        let pool_feats: Vec<FeatureVector> = pool.iter().map(|&i| wild_features[i]).collect();
        let mut alive: Vec<bool> = vec![true; pool.len()];
        let mut alive_count = pool.len();
        // Weighted buffers, valid for `prev_weights`; rebuilt fresh per
        // pool (the pool contents changed) and reused across rounds while
        // the learned weights stay identical.
        let mut prev_weights: Option<Weights> = None;
        let mut sec_w: Vec<FeatureVector> = Vec::new();
        let mut pool_w: Vec<FeatureVector> = Vec::new();
        // The search index over `pool_w`, shared across rounds and
        // invalidated only when the weights change.
        let mut index: Option<WildIndex> = None;

        for _ in 0..pool_spec.rounds {
            round_no += 1;
            let search_range = alive_count;
            if search_range < security.len() {
                // Pool exhausted below the candidate count: stop this pool.
                break;
            }
            let tracing = obs::enabled();
            let _round_span =
                obs::span(format!("round {round_no:02} [{}]", pool_spec.name));
            // Weight over the joint population in play this round. The
            // pool statistic is refolded over the live rows (the live set
            // shrinks, so its max can drop); merging it with the monotone
            // security max is bitwise equal to one pass over the union
            // because elementwise max is associative and commutative.
            let live_idx: Vec<u32> = (0..pool_feats.len() as u32)
                .filter(|&i| alive[i as usize])
                .collect();
            let pool_max = par::fold_chunked(
                &live_idx,
                threads,
                || [0.0f64; FEATURE_DIM],
                |mut acc, &i| {
                    merge_max_abs(&mut acc, &max_abs(std::iter::once(&pool_feats[i as usize])));
                    acc
                },
                |mut a, b| {
                    merge_max_abs(&mut a, &b);
                    a
                },
            );
            let mut joint = sec_max;
            merge_max_abs(&mut joint, &pool_max);
            let weights = weights_from_max_abs(&joint);

            if prev_weights.as_ref() != Some(&weights) {
                sec_w = par::map_chunked(&security, threads, |v| apply_weights(v, &weights));
                // Dead rows are reweighted too: they cost one multiply
                // each and keep the buffer aligned with the index/mask.
                pool_w = par::map_chunked(&pool_feats, threads, |v| apply_weights(v, &weights));
                prev_weights = Some(weights);
                index = None;
            } else {
                // Same weights as last round: only the rows appended to
                // the security set since then still need weighting, the
                // pool buffer (and the index over it) carry over as-is.
                let w = prev_weights.as_ref().expect("weights set");
                for v in &security[sec_w.len()..] {
                    sec_w.push(apply_weights(v, w));
                }
            }
            if index.is_none() && config.index != IndexMode::Scan {
                let _s = obs::span("nls.index_build");
                index = Some(WildIndex::build(&pool_w, config));
            }

            // Per-round NLS efficiency: snapshot the global counters
            // around the search and bank the deltas under round-scoped
            // names (the examples print "comparisons avoided %" off
            // these, and `tests/trace.rs` pins the accounting identity
            // over them). The snapshot sits *after* the index build: the
            // k-means construction runs its own tiny centroid searches,
            // which would otherwise leak sweeps with a different row
            // count into the round's books. Saturating subtraction
            // guards against concurrent traced builds in tests.
            let snap: Vec<u64> = if tracing {
                ROUND_COUNTERS.iter().map(|n| obs::counter_value(n)).collect()
            } else {
                Vec::new()
            };

            let dead: Vec<bool> = alive.iter().map(|&a| !a).collect();
            let links =
                nearest_link_search_indexed(&sec_w, &pool_w, config, index.as_ref(), Some(&dead));
            if tracing {
                for (name, before) in ROUND_COUNTERS.iter().zip(&snap) {
                    let delta = obs::counter_value(name).saturating_sub(*before);
                    let suffix = name.strip_prefix("nls.").expect("nls-scoped counter");
                    obs::counter_add(&format!("nls.round{round_no:02}.{suffix}"), delta);
                }
                obs::counter_add(
                    &format!("nls.round{round_no:02}.pool_rows"),
                    pool_feats.len() as u64,
                );
            }

            // The search guarantees distinct columns; sorting them is the
            // deterministic (ascending pool index) verification order.
            let mut claimed: Vec<usize> = links.clone();
            claimed.sort_unstable();
            debug_assert!(
                claimed.windows(2).all(|w| w[0] != w[1]),
                "nearest_link_search returned a duplicate link"
            );
            let mut verified = 0usize;
            for &local in &claimed {
                debug_assert!(alive[local], "linked a dead pool row");
                let global = pool[local];
                if verify(global) {
                    verified += 1;
                    let row = wild_features[global];
                    merge_max_abs(&mut sec_max, &max_abs(std::iter::once(&row)));
                    security.push(row);
                    security_idx.push(global);
                } else {
                    nonsecurity_idx.push(global);
                }
                alive[local] = false;
            }
            alive_count -= claimed.len();
            let candidates = claimed.len();
            if tracing {
                obs::counter_add("augment.candidates", candidates as u64);
                obs::counter_add("augment.verified", verified as u64);
            }
            rows.push(AugmentationRound {
                pool: pool_spec.name.clone(),
                round: round_no,
                search_range,
                candidates,
                verified_security: verified,
                ratio: verified as f64 / candidates.max(1) as f64,
            });
        }
    }
    (rows, security_idx, nonsecurity_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic universe where "security" items cluster near the seed.
    fn universe() -> (Vec<FeatureVector>, Vec<FeatureVector>, Vec<bool>) {
        let mut seed = Vec::new();
        for i in 0..10 {
            let mut v = FeatureVector::zero();
            v.as_mut_slice()[0] = 5.0 + (i as f64) * 0.01;
            v.as_mut_slice()[1] = 5.0;
            seed.push(v);
        }
        let mut wild = Vec::new();
        let mut truth = Vec::new();
        for i in 0..200 {
            let mut v = FeatureVector::zero();
            let is_sec = i % 10 == 0; // 10% security
            if is_sec {
                v.as_mut_slice()[0] = 5.0 + (i as f64) * 0.001;
                v.as_mut_slice()[1] = 5.0;
            } else {
                v.as_mut_slice()[0] = (i % 13) as f64 * 0.1;
                v.as_mut_slice()[1] = 0.0;
            }
            wild.push(v);
            truth.push(is_sec);
        }
        (seed, wild, truth)
    }

    /// The seed implementation (full clone + reweight + compact every
    /// round) — the incremental masked driver must match it
    /// output-for-output in every index mode.
    fn augment_rounds_naive<F>(
        seed_features: &[FeatureVector],
        wild_features: &[FeatureVector],
        pools: &[PoolSpec],
        mut verify: F,
    ) -> (Vec<AugmentationRound>, Vec<usize>, Vec<usize>)
    where
        F: FnMut(usize) -> bool,
    {
        use patchdb_features::learn_weights;
        let mut security: Vec<FeatureVector> = seed_features.to_vec();
        let mut security_idx: Vec<usize> = Vec::new();
        let mut nonsecurity_idx: Vec<usize> = Vec::new();
        let mut rows = Vec::new();
        let mut round_no = 0usize;
        for pool_spec in pools {
            let mut pool: Vec<usize> = pool_spec.members.clone();
            for _ in 0..pool_spec.rounds {
                round_no += 1;
                let search_range = pool.len();
                if search_range < security.len() {
                    break;
                }
                let pool_feats: Vec<FeatureVector> =
                    pool.iter().map(|&i| wild_features[i]).collect();
                let weights = learn_weights(security.iter().chain(pool_feats.iter()));
                let sec_w: Vec<FeatureVector> =
                    security.iter().map(|v| apply_weights(v, &weights)).collect();
                let pool_w: Vec<FeatureVector> =
                    pool_feats.iter().map(|v| apply_weights(v, &weights)).collect();
                let links = crate::search::nearest_link_search(&sec_w, &pool_w);
                let mut claimed: Vec<usize> = links.clone();
                claimed.sort_unstable();
                claimed.dedup();
                let mut verified = 0usize;
                for &local in &claimed {
                    let global = pool[local];
                    if verify(global) {
                        verified += 1;
                        security.push(wild_features[global]);
                        security_idx.push(global);
                    } else {
                        nonsecurity_idx.push(global);
                    }
                }
                let candidates = claimed.len();
                rows.push(AugmentationRound {
                    pool: pool_spec.name.clone(),
                    round: round_no,
                    search_range,
                    candidates,
                    verified_security: verified,
                    ratio: verified as f64 / candidates.max(1) as f64,
                });
                let claimed_set: std::collections::HashSet<usize> =
                    claimed.into_iter().collect();
                pool = pool
                    .into_iter()
                    .enumerate()
                    .filter(|(local, _)| !claimed_set.contains(local))
                    .map(|(_, g)| g)
                    .collect();
            }
        }
        (rows, security_idx, nonsecurity_idx)
    }

    fn assert_rounds_match(fast: &[AugmentationRound], naive: &[AugmentationRound], tag: &str) {
        assert_eq!(fast.len(), naive.len(), "{tag}: round count");
        for (a, b) in fast.iter().zip(naive) {
            assert_eq!(a.pool, b.pool, "{tag}");
            assert_eq!(a.round, b.round, "{tag}");
            assert_eq!(a.search_range, b.search_range, "{tag}");
            assert_eq!(a.candidates, b.candidates, "{tag}");
            assert_eq!(a.verified_security, b.verified_security, "{tag}");
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "{tag}");
        }
    }

    #[test]
    fn incremental_driver_matches_naive_reference_in_every_mode() {
        let (seed, wild, truth) = universe();
        let pools = vec![
            PoolSpec { name: "A".into(), members: (0..120).collect(), rounds: 3 },
            PoolSpec { name: "B".into(), members: (120..200).collect(), rounds: 2 },
        ];
        let naive = augment_rounds_naive(&seed, &wild, &pools, |i| truth[i]);
        for mode in [IndexMode::Scan, IndexMode::Partitioned, IndexMode::Quantized] {
            let cfg = NlsConfig::auto().index(mode);
            let fast = augment_rounds_with(&seed, &wild, &pools, &cfg, |i| truth[i]);
            assert_eq!(fast.1, naive.1, "{mode:?}: security partitions differ");
            assert_eq!(fast.2, naive.2, "{mode:?}: non-security partitions differ");
            assert_rounds_match(&fast.0, &naive.0, &format!("{mode:?}"));
        }
    }

    #[test]
    fn rounds_find_clustered_security() {
        let (seed, wild, truth) = universe();
        let pools = vec![PoolSpec {
            name: "Set T".to_owned(),
            members: (0..wild.len()).collect(),
            rounds: 2,
        }];
        let (rows, sec_idx, nonsec_idx) =
            augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        assert_eq!(rows.len(), 2);
        // First round: 10 candidates, and the clustered security patches
        // should dominate (well above the 10% base rate).
        assert_eq!(rows[0].candidates, 10);
        assert!(rows[0].ratio > 0.5, "round 1 ratio {}", rows[0].ratio);
        // Bookkeeping: verified sets partition the claimed candidates.
        let total_claimed: usize = rows.iter().map(|r| r.candidates).sum();
        assert_eq!(sec_idx.len() + nonsec_idx.len(), total_claimed);
        // Candidate count grows with the security set.
        assert_eq!(rows[1].candidates, 10 + rows[0].verified_security);
    }

    #[test]
    fn verified_candidates_leave_the_pool() {
        let (seed, wild, truth) = universe();
        let pools = vec![PoolSpec {
            name: "Set T".to_owned(),
            members: (0..wild.len()).collect(),
            rounds: 3,
        }];
        let (_, sec_idx, nonsec_idx) = augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        let mut all: Vec<usize> = sec_idx.iter().chain(&nonsec_idx).copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "a wild item was verified twice");
    }

    #[test]
    fn stops_when_pool_exhausts() {
        let (seed, wild, truth) = universe();
        let pools = vec![PoolSpec {
            name: "Tiny".to_owned(),
            members: (0..12).collect(),
            rounds: 5,
        }];
        // 10 seed + verified → candidate demand quickly exceeds 12-item
        // pool; the driver must stop cleanly rather than panic.
        let (rows, ..) = augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        assert!(rows.len() <= 2);
    }

    #[test]
    fn multiple_pools_run_in_sequence() {
        let (seed, wild, truth) = universe();
        let pools = vec![
            PoolSpec { name: "A".into(), members: (0..100).collect(), rounds: 1 },
            PoolSpec { name: "B".into(), members: (100..200).collect(), rounds: 1 },
        ];
        let (rows, ..) = augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].pool, "A");
        assert_eq!(rows[1].pool, "B");
        assert!(rows[1].candidates >= rows[0].candidates);
    }
}
