//! The multi-round human-in-the-loop dataset augmentation driver behind
//! Table II: nearest link search → manual verification → loop judgment.

use patchdb_features::{apply_weights, learn_weights, FeatureVector};

use crate::search::nearest_link_search;

/// One unlabeled pool ("Set I/II/III" in Table II) and how many rounds to
/// run over it.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Display name (e.g. `"Set I: 100K"`).
    pub name: String,
    /// Indices (into the caller's wild universe) of the pool members.
    pub members: Vec<usize>,
    /// Number of augmentation rounds over this pool.
    pub rounds: usize,
}

/// Outcome of one augmentation round — one row of Table II.
#[derive(Debug, Clone)]
pub struct AugmentationRound {
    /// Pool name the round ran in.
    pub pool: String,
    /// 1-based global round number.
    pub round: usize,
    /// Search range (unlabeled patches at the start of the round).
    pub search_range: usize,
    /// Candidates selected by nearest link search (= |known security|).
    pub candidates: usize,
    /// Candidates the oracle verified as security patches.
    pub verified_security: usize,
    /// `verified_security / candidates`.
    pub ratio: f64,
}

/// Runs the Table II augmentation protocol.
///
/// * `seed_features` — feature vectors of the initial (NVD) security set;
/// * `wild_features` — feature vectors of the whole wild universe, indexed
///   by the ids used in `pools`;
/// * `pools` — the unlabeled sets and their round counts, processed in
///   order;
/// * `verify` — the manual-verification oracle: given a wild index,
///   returns whether the commit is a security patch.
///
/// Per round: weights are (re)learned over the pooled population
/// (Section III-B-2 normalizes per feature), nearest link search selects
/// one candidate per known security patch, every candidate is verified,
/// verified positives join the security set, and **all** verified
/// candidates leave the pool (negatives become cleaned non-security
/// data). Returns the per-round rows plus the final security/non-security
/// index partitions.
pub fn augment_rounds<F>(
    seed_features: &[FeatureVector],
    wild_features: &[FeatureVector],
    pools: &[PoolSpec],
    mut verify: F,
) -> (Vec<AugmentationRound>, Vec<usize>, Vec<usize>)
where
    F: FnMut(usize) -> bool,
{
    let mut security: Vec<FeatureVector> = seed_features.to_vec();
    let mut security_idx: Vec<usize> = Vec::new(); // wild indices verified positive
    let mut nonsecurity_idx: Vec<usize> = Vec::new();
    let mut rows = Vec::new();
    let mut round_no = 0usize;

    for pool_spec in pools {
        let mut pool: Vec<usize> = pool_spec.members.clone();
        for _ in 0..pool_spec.rounds {
            round_no += 1;
            let search_range = pool.len();
            if search_range < security.len() {
                // Pool exhausted below the candidate count: stop this pool.
                break;
            }

            // Weight over the joint population in play this round.
            let pool_feats: Vec<FeatureVector> =
                pool.iter().map(|&i| wild_features[i]).collect();
            let weights = learn_weights(security.iter().chain(pool_feats.iter()));
            let sec_w: Vec<FeatureVector> =
                security.iter().map(|v| apply_weights(v, &weights)).collect();
            let pool_w: Vec<FeatureVector> =
                pool_feats.iter().map(|v| apply_weights(v, &weights)).collect();

            let links = nearest_link_search(&sec_w, &pool_w);

            // Verify every linked candidate; split the pool.
            let mut claimed: Vec<usize> = links.clone();
            claimed.sort_unstable();
            claimed.dedup();
            let mut verified = 0usize;
            for &local in &claimed {
                let global = pool[local];
                if verify(global) {
                    verified += 1;
                    security.push(wild_features[global]);
                    security_idx.push(global);
                } else {
                    nonsecurity_idx.push(global);
                }
            }
            let candidates = claimed.len();
            rows.push(AugmentationRound {
                pool: pool_spec.name.clone(),
                round: round_no,
                search_range,
                candidates,
                verified_security: verified,
                ratio: verified as f64 / candidates.max(1) as f64,
            });

            // Remove verified candidates from the pool.
            let claimed_set: std::collections::HashSet<usize> = claimed.into_iter().collect();
            pool = pool
                .into_iter()
                .enumerate()
                .filter(|(local, _)| !claimed_set.contains(local))
                .map(|(_, g)| g)
                .collect();
        }
    }
    (rows, security_idx, nonsecurity_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic universe where "security" items cluster near the seed.
    fn universe() -> (Vec<FeatureVector>, Vec<FeatureVector>, Vec<bool>) {
        let mut seed = Vec::new();
        for i in 0..10 {
            let mut v = FeatureVector::zero();
            v.as_mut_slice()[0] = 5.0 + (i as f64) * 0.01;
            v.as_mut_slice()[1] = 5.0;
            seed.push(v);
        }
        let mut wild = Vec::new();
        let mut truth = Vec::new();
        for i in 0..200 {
            let mut v = FeatureVector::zero();
            let is_sec = i % 10 == 0; // 10% security
            if is_sec {
                v.as_mut_slice()[0] = 5.0 + (i as f64) * 0.001;
                v.as_mut_slice()[1] = 5.0;
            } else {
                v.as_mut_slice()[0] = (i % 13) as f64 * 0.1;
                v.as_mut_slice()[1] = 0.0;
            }
            wild.push(v);
            truth.push(is_sec);
        }
        (seed, wild, truth)
    }

    #[test]
    fn rounds_find_clustered_security() {
        let (seed, wild, truth) = universe();
        let pools = vec![PoolSpec {
            name: "Set T".to_owned(),
            members: (0..wild.len()).collect(),
            rounds: 2,
        }];
        let (rows, sec_idx, nonsec_idx) =
            augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        assert_eq!(rows.len(), 2);
        // First round: 10 candidates, and the clustered security patches
        // should dominate (well above the 10% base rate).
        assert_eq!(rows[0].candidates, 10);
        assert!(rows[0].ratio > 0.5, "round 1 ratio {}", rows[0].ratio);
        // Bookkeeping: verified sets partition the claimed candidates.
        let total_claimed: usize = rows.iter().map(|r| r.candidates).sum();
        assert_eq!(sec_idx.len() + nonsec_idx.len(), total_claimed);
        // Candidate count grows with the security set.
        assert_eq!(rows[1].candidates, 10 + rows[0].verified_security);
    }

    #[test]
    fn verified_candidates_leave_the_pool() {
        let (seed, wild, truth) = universe();
        let pools = vec![PoolSpec {
            name: "Set T".to_owned(),
            members: (0..wild.len()).collect(),
            rounds: 3,
        }];
        let (_, sec_idx, nonsec_idx) = augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        let mut all: Vec<usize> = sec_idx.iter().chain(&nonsec_idx).copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "a wild item was verified twice");
    }

    #[test]
    fn stops_when_pool_exhausts() {
        let (seed, wild, truth) = universe();
        let pools = vec![PoolSpec {
            name: "Tiny".to_owned(),
            members: (0..12).collect(),
            rounds: 5,
        }];
        // 10 seed + verified → candidate demand quickly exceeds 12-item
        // pool; the driver must stop cleanly rather than panic.
        let (rows, ..) = augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        assert!(rows.len() <= 2);
    }

    #[test]
    fn multiple_pools_run_in_sequence() {
        let (seed, wild, truth) = universe();
        let pools = vec![
            PoolSpec { name: "A".into(), members: (0..100).collect(), rounds: 1 },
            PoolSpec { name: "B".into(), members: (100..200).collect(), rounds: 1 },
        ];
        let (rows, ..) = augment_rounds(&seed, &wild, &pools, |i| truth[i]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].pool, "A");
        assert_eq!(rows[1].pool, "B");
        assert!(rows[1].candidates >= rows[0].candidates);
    }
}
