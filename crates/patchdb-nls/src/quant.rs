//! 8-bit scalar quantization of the wild pool with a *sound* squared-
//! distance lower bound — the fast path of `IndexMode::Quantized`.
//!
//! Every pool vector is encoded as 60 byte codes, one per dimension. A
//! candidate is rejected without touching its f64 data only when the
//! lower bound computed from its codes strictly exceeds the current
//! k-best threshold; every survivor is re-ranked with the exact f64
//! distance, so the search output is byte-identical to the plain scan.
//!
//! ## Why the bound can never overshoot the exact distance
//!
//! Per dimension `d`, [`Quantizer::fit`] lays 257 monotone boundaries
//! `b[0] ≤ b[1] ≤ … ≤ b[256]` spanning the pool's `[min, max]`, and
//! [`Quantizer::encode_into`] assigns code `c` such that the *invariant*
//! `b[c] ≤ x ≤ b[c+1]` holds (enforced by direct comparisons, not
//! arithmetic, so float rounding in the bucket math cannot break it).
//! The per-dimension bound term is then
//!
//! * `(b[c] − q)²` when `q < b[c]` (the query sits left of the bucket),
//! * `(q − b[c+1])²` when `q > b[c+1]` (right of the bucket),
//! * `0` otherwise,
//!
//! evaluated in the same f64 arithmetic as the exact kernel. Each case
//! is ≤ the exact term *as computed*: rounding-to-nearest is monotone,
//! so `0 ≤ u ≤ v` implies `fl(u²) ≤ fl(v²)`, and with
//! `q < b[c] ≤ x` the exact subtraction satisfies
//! `fl(b[c] − q) ≤ fl(x − q)` for the same reason. Summing both sides
//! dimension-by-dimension in the identical order (f64 addition is
//! monotone in each operand, and squares are non-negative) keeps the
//! inequality bitwise: `bound ≤ squared_euclidean(q, x)` exactly, with
//! no slack factor needed. The property test
//! `quantizer_bound_is_sound` in `tests/prop.rs` hammers this.

use patchdb_features::{FeatureVector, FEATURE_DIM};
use patchdb_rt::par;

/// Codes per dimension (8-bit).
const LEVELS: usize = 256;
/// Boundaries per dimension (`LEVELS + 1`).
const BOUNDS: usize = LEVELS + 1;

/// Per-dimension scalar quantizer fitted to one (weighted) pool.
#[derive(Debug, Clone)]
pub struct Quantizer {
    /// `FEATURE_DIM × BOUNDS` monotone bucket boundaries, row-major.
    bounds: Vec<f64>,
    /// `LEVELS / (hi − lo)` per dimension (`0` for degenerate dims) —
    /// only a *guess* accelerator for encoding; the invariant is
    /// enforced by comparisons afterwards.
    inv_step: [f64; FEATURE_DIM],
    /// `lo` per dimension.
    lo: [f64; FEATURE_DIM],
}

impl Quantizer {
    /// Fits per-dimension `[min, max]` ranges over `pool` and lays 256
    /// equal-width buckets per dimension. Deterministic for any thread
    /// count: elementwise min/max is associative and commutative, so
    /// the chunked fold equals one serial pass (NaN values never enter
    /// the accumulator — `f64::min`/`max` ignore them).
    pub fn fit(pool: &[FeatureVector], threads: usize) -> Quantizer {
        let (mins, maxs) = par::fold_chunked(
            pool,
            threads.max(1),
            || ([f64::INFINITY; FEATURE_DIM], [f64::NEG_INFINITY; FEATURE_DIM]),
            |(mut lo, mut hi), row| {
                for (d, &x) in row.as_slice().iter().enumerate() {
                    lo[d] = lo[d].min(x);
                    hi[d] = hi[d].max(x);
                }
                (lo, hi)
            },
            |(mut alo, mut ahi), (blo, bhi)| {
                for d in 0..FEATURE_DIM {
                    alo[d] = alo[d].min(blo[d]);
                    ahi[d] = ahi[d].max(bhi[d]);
                }
                (alo, ahi)
            },
        );

        let mut bounds = vec![0.0f64; FEATURE_DIM * BOUNDS];
        let mut inv_step = [0.0f64; FEATURE_DIM];
        let mut lo_out = [0.0f64; FEATURE_DIM];
        for d in 0..FEATURE_DIM {
            // Degenerate dimension (empty range, or all-NaN leaving the
            // sentinels): collapse to a single point — every boundary
            // equal, every code 0, every bound term exact-or-zero.
            let (lo, hi) = if mins[d] <= maxs[d] { (mins[d], maxs[d]) } else { (0.0, 0.0) };
            let step = (hi - lo) / LEVELS as f64;
            let row = &mut bounds[d * BOUNDS..(d + 1) * BOUNDS];
            row[0] = lo;
            for j in 1..LEVELS {
                // Monotonicity is enforced explicitly; the encode fix-up
                // loops then only need `b` sorted, not exactly spaced.
                row[j] = (lo + step * j as f64).max(row[j - 1]);
            }
            row[LEVELS] = hi.max(row[LEVELS - 1]);
            inv_step[d] = if step > 0.0 { 1.0 / step } else { 0.0 };
            lo_out[d] = lo;
        }
        Quantizer { bounds, inv_step, lo: lo_out }
    }

    /// Encodes `v` into `out` (one code per dimension), guaranteeing the
    /// bucket invariant `bounds[c] ≤ x ≤ bounds[c+1]` for every finite
    /// `x` inside the fitted range. NaN coordinates get code 0 (their
    /// exact distance is NaN; the bound comparisons all come out false,
    /// so such candidates are never fast-path rejected — see
    /// [`lower_bound`](Self::lower_bound)).
    pub fn encode_into(&self, v: &FeatureVector, out: &mut [u8]) {
        assert_eq!(out.len(), FEATURE_DIM);
        for (d, &x) in v.as_slice().iter().enumerate() {
            let row = &self.bounds[d * BOUNDS..(d + 1) * BOUNDS];
            // Arithmetic guess (float→int casts saturate; NaN → 0) …
            let mut c = ((x - self.lo[d]) * self.inv_step[d]) as usize;
            c = c.min(LEVELS - 1);
            // … then comparison fix-ups establish the invariant.
            while c > 0 && row[c] > x {
                c -= 1;
            }
            while c < LEVELS - 1 && row[c + 1] < x {
                c += 1;
            }
            out[d] = c as u8;
        }
    }

    /// Convenience wrapper over [`encode_into`](Self::encode_into).
    pub fn encode(&self, v: &FeatureVector) -> [u8; FEATURE_DIM] {
        let mut out = [0u8; FEATURE_DIM];
        self.encode_into(v, &mut out);
        out
    }

    /// The bucket `[b[c], b[c+1]]` of dimension `d`, code `c` — for the
    /// round-trip property tests.
    pub fn bucket(&self, d: usize, c: u8) -> (f64, f64) {
        let row = &self.bounds[d * BOUNDS..(d + 1) * BOUNDS];
        (row[c as usize], row[c as usize + 1])
    }

    /// The sound squared-distance lower bound between query `q` and the
    /// vector encoded by `codes`: never exceeds
    /// `squared_euclidean(q, that_vector)` bitwise (module docs).
    pub fn lower_bound(&self, q: &FeatureVector, codes: &[u8]) -> f64 {
        self.lower_bound_above(q, codes, f64::INFINITY).unwrap_or(f64::INFINITY)
    }

    /// [`lower_bound`](Self::lower_bound) with an early exit: returns
    /// `None` as soon as the partial bound strictly exceeds `tau` (the
    /// terms are non-negative, so the full bound — and therefore the
    /// exact distance — can only be larger; a candidate at exactly
    /// `tau` may still win an index tie, hence the strict comparison).
    #[inline]
    pub fn lower_bound_above(&self, q: &FeatureVector, codes: &[u8], tau: f64) -> Option<f64> {
        debug_assert_eq!(codes.len(), FEATURE_DIM);
        let qs = q.as_slice();
        let mut acc = 0.0f64;
        let mut d = 0;
        while d < FEATURE_DIM {
            let end = (d + crate::search::EARLY_EXIT_STRIDE).min(FEATURE_DIM);
            while d < end {
                let c = codes[d] as usize;
                let base = d * BOUNDS;
                let b_lo = self.bounds[base + c];
                let b_hi = self.bounds[base + c + 1];
                let qd = qs[d];
                // Exactly one branch taken per dimension; NaN query
                // coordinates fail both comparisons and contribute 0.
                let left = b_lo - qd;
                let right = qd - b_hi;
                if left > 0.0 {
                    acc += left * left;
                } else if right > 0.0 {
                    acc += right * right;
                }
                d += 1;
            }
            if acc > tau {
                return None;
            }
        }
        Some(acc)
    }
}

/// Encodes every pool row in parallel (pure per-row function, so the
/// result is independent of the thread count), point-major: row `i`
/// occupies `codes[i*FEATURE_DIM .. (i+1)*FEATURE_DIM]`.
pub(crate) fn encode_pool(q: &Quantizer, pool: &[FeatureVector], threads: usize) -> Vec<u8> {
    let rows = par::map_chunked(pool, threads.max(1), |v| q.encode(v));
    let mut codes = Vec::with_capacity(pool.len() * FEATURE_DIM);
    for row in &rows {
        codes.extend_from_slice(row);
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb_features::squared_euclidean;
    use patchdb_rt::rng::Xoshiro256pp;

    fn rand_vec(rng: &mut Xoshiro256pp, scale: f64) -> FeatureVector {
        let mut v = FeatureVector::zero();
        for x in v.as_mut_slice() {
            *x = rng.gen_range(-scale..scale);
        }
        v
    }

    #[test]
    fn codes_respect_the_bucket_invariant() {
        let mut rng = Xoshiro256pp::seed_from_u64(71);
        let pool: Vec<FeatureVector> = (0..300).map(|_| rand_vec(&mut rng, 4.0)).collect();
        let q = Quantizer::fit(&pool, 4);
        for v in &pool {
            let codes = q.encode(v);
            for (d, &x) in v.as_slice().iter().enumerate() {
                let (lo, hi) = q.bucket(d, codes[d]);
                assert!(lo <= x && x <= hi, "dim {d}: {x} outside bucket [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn bound_never_exceeds_exact_distance() {
        let mut rng = Xoshiro256pp::seed_from_u64(72);
        let pool: Vec<FeatureVector> = (0..200).map(|_| rand_vec(&mut rng, 2.0)).collect();
        let q = Quantizer::fit(&pool, 1);
        for _ in 0..50 {
            let query = rand_vec(&mut rng, 3.0); // may fall outside the fitted range
            for v in &pool {
                let bound = q.lower_bound(&query, &q.encode(v));
                let exact = squared_euclidean(&query, v);
                assert!(bound <= exact, "bound {bound} > exact {exact}");
            }
        }
    }

    #[test]
    fn degenerate_constant_dimension_is_exact() {
        // All pool values identical in every dimension: the bound equals
        // the exact distance (each bucket is a single point).
        let v = {
            let mut v = FeatureVector::zero();
            v.as_mut_slice()[0] = 2.5;
            v
        };
        let pool = vec![v; 7];
        let q = Quantizer::fit(&pool, 1);
        let mut query = FeatureVector::zero();
        query.as_mut_slice()[0] = -1.0;
        let bound = q.lower_bound(&query, &q.encode(&v));
        let exact = squared_euclidean(&query, &v);
        assert_eq!(bound.to_bits(), exact.to_bits());
    }

    #[test]
    fn nan_coordinates_never_reject() {
        let mut rng = Xoshiro256pp::seed_from_u64(73);
        let mut pool: Vec<FeatureVector> = (0..50).map(|_| rand_vec(&mut rng, 1.0)).collect();
        pool[3].as_mut_slice()[5] = f64::NAN;
        let q = Quantizer::fit(&pool, 1);
        // A NaN query coordinate contributes 0 to the bound, so the
        // early-exit can only fire off the other dimensions' (valid)
        // terms — and the bound stays a true lower bound of NaN-free
        // prefixes. A finite tau must not reject via the NaN dim alone.
        let mut query = FeatureVector::zero();
        query.as_mut_slice()[5] = f64::NAN;
        let codes = q.encode(&pool[0]);
        let b = q.lower_bound(&query, &codes);
        assert!(b.is_finite());
    }

    #[test]
    fn early_exit_matches_full_bound_when_completed() {
        let mut rng = Xoshiro256pp::seed_from_u64(74);
        let pool: Vec<FeatureVector> = (0..60).map(|_| rand_vec(&mut rng, 5.0)).collect();
        let q = Quantizer::fit(&pool, 1);
        let query = rand_vec(&mut rng, 5.0);
        let codes = q.encode(&pool[10]);
        let full = q.lower_bound(&query, &codes);
        assert_eq!(q.lower_bound_above(&query, &codes, full), Some(full));
        if full > 0.0 {
            assert_eq!(q.lower_bound_above(&query, &codes, full * 0.5), None);
        }
    }
}
