//! The sublinear wild-pool index: a coarse k-means partition with
//! structure-of-arrays side tables (centroid norms, cell radii, member
//! distances and norms) that let a query retire whole cells — and whole
//! flanks inside a cell — in O(1) per skip, plus, in
//! `IndexMode::Quantized`, 8-bit codes for the
//! [`Quantizer`](crate::quant::Quantizer) fast path.
//!
//! ## The skip chain
//!
//! Per query `q` the scan walks the cells through a stack of ever more
//! expensive, ever tighter bounds; each layer only sees what the layer
//! above could not prove away:
//!
//! 1. **Norm gap (O(1) per cell).** `d(q, x) ≥ |‖q‖ − ‖c‖| − r` for any
//!    member `x` of a cell with centroid `c` and radius
//!    `r = max d(c, ·)` (triangle via the origin, then via the
//!    centroid). One subtract against the SoA `cent_norms`/`radii`
//!    tables retires the whole cell without touching its 60-dim
//!    centroid.
//! 2. **Centroid distance (≤ 60 dims per cell).** Survivors get an
//!    early-exiting exact `d²(q, c)` against the d²-space bar
//!    `(r + t)²` where `t` is the distance-space threshold; crossing
//!    the bar mid-sum proves `d(q, x) ≥ d(q, c) − r > t` for every
//!    member, so the cell retires (possibly) without finishing the sum.
//! 3. **Member windowing (O(1) per skipped flank).** Inside a visited
//!    cell, `d(q, x) ≥ |d(q, c) − d(x, c)|` with every `d(x, c)`
//!    precomputed and the members sorted by it. Scanning expands
//!    outward from the query's position in that ordering and retires a
//!    whole side once its gap alone beats the threshold — exactly the
//!    norm-prune argument with the cell centroid in place of the
//!    origin, and a far tighter bound because the centroid is close.
//! 4. **Member norm and anchor gaps (O(1) per member).** `|‖q‖ − ‖x‖|`
//!    against the per-cell SoA `norms` table — the classic norm bound —
//!    and `|d(q, A) − d(x, A)|` against the `anch` table, where `A` is
//!    a fixed far-out anchor (the max-norm pool row). Each is the same
//!    triangle argument through a different reference point; the anchor
//!    projects along a direction the origin cannot see, catching
//!    members the window and the norm both keep.
//! 5. **Quantized rejection (`IndexMode::Quantized`).** The
//!    scalar-quantized lower bound never exceeds the exact squared
//!    distance *as computed* (see the `quant` module docs — no slack
//!    involved), and rejects only on a strict `> tau` comparison, so a
//!    candidate tied at exactly `tau` survives to the exact re-rank and
//!    can still win an index tie.
//! 6. **Exact re-rank.** Whatever survives is evaluated with
//!    [`early_exit_d2`](crate::search), which accumulates in exactly
//!    `squared_euclidean`'s summation order — bit-identical values.
//!
//! ## Why the indexed scan is byte-identical to the plain scan
//!
//! Every layer skips only *provable losers*: candidates whose computed
//! squared distance is guaranteed to exceed the current k-best
//! threshold, which `push_candidate` would reject anyway. The surviving
//! k-best set is therefore the same `(d², index)`-lexicographic set the
//! exhaustive scan keeps, and `push_candidate` is visit-order
//! independent, so the *order* in which cells are probed cannot change
//! the output. Distance-space bounds carry the same
//! [`PRUNE_SLACK`](crate::search) that guards the pruned scan's norm
//! bound (sqrt-derived quantities are a few ulps loose), and the
//! d²-space bars inflate by [`BOUND_CUSHION`] on top — orders of
//! magnitude more slack than the rounding they absorb. NaN distances
//! make every skip/reject comparison come out false, so NaN-tainted
//! queries degrade to evaluating everything; NaN members sort to the
//! far end of every table and are only ever retired when the threshold
//! is finite — a regime where `push_candidate` rejects NaN anyway.
//!
//! Construction is deterministic for any thread count: centroids are
//! seeded from a fixed [`rt::rng`](patchdb_rt::rng) stream, Lloyd
//! updates run serially over a fixed subsample, and the full-pool
//! assignment reuses the (bitwise thread-invariant) pruned row scan.

use patchdb_features::{squared_euclidean, FeatureVector, FEATURE_DIM};
use patchdb_rt::rng::Xoshiro256pp;

use crate::quant::{encode_pool, Quantizer};
use crate::search::{
    early_exit_d2, norm, push_candidate, row_minima, threshold, IndexMode, NlsConfig, Probe,
    PRUNE_SLACK,
};

/// Fixed seed of the centroid-sampling RNG stream — a constant, so the
/// index (and therefore every search through it) is a pure function of
/// the pool bytes.
const KMEANS_SEED: u64 = 0x5EED_01DE_CE11_5EED;

/// Lloyd refinement iterations over the training subsample.
const LLOYD_ITERS: usize = 2;

/// Multiplicative inflation on the cell-level bars: makes the derived
/// thresholds strictly conservative against the handful of extra
/// roundings (`sqrt`, add, square) they stack on top of `PRUNE_SLACK`.
const BOUND_CUSHION: f64 = 1.0 + 1e-9;

/// One partition cell. Members are sorted by `(distance to centroid,
/// original index)` so a query can window-prune around its own centroid
/// distance; `dists` and `norms` are the SoA bound tables aligned to
/// that order, `rows` holds contiguous copies of the member features
/// (the exact kernel walks one 480-byte row at a time), and `codes` the
/// point-major 8-bit codes when quantized.
struct Cell {
    members: Vec<u32>,
    dists: Vec<f64>,
    norms: Vec<f64>,
    /// `d(x, anchor)` per member — the second one-dimensional
    /// projection behind skip layer 4.
    anch: Vec<f64>,
    rows: Vec<FeatureVector>,
    codes: Vec<u8>,
    /// `same[p]` = `rows[p]` is bitwise-identical to `rows[p - 1]`.
    /// Duplicate rows share a centroid distance, so the window order
    /// parks them adjacently (ids ascending) and each flank of the
    /// window walk visits them consecutively — one exact evaluation
    /// per duplicate run, reused for the rest (skip layer 5½).
    same: Vec<bool>,
}

/// The memoized outcome of the last evaluation on one window flank,
/// reusable while [`Cell::same`] chains hold.
#[derive(Clone, Copy)]
enum DupRun {
    /// Exact squared distance of the duplicate row (full accumulation).
    D2(f64),
    /// The evaluation early-exited: the run's d² provably exceeded a
    /// past threshold, and thresholds only shrink.
    Exited,
}

/// A partitioned (and optionally quantized) snapshot of one weighted
/// wild pool. Build once per pool contents, query many times — the
/// augmentation driver keeps an index alive across rounds while the
/// learned weights stay identical, masking claimed rows instead of
/// rebuilding.
pub struct WildIndex {
    n: usize,
    cells: Vec<Cell>,
    centroids: Vec<FeatureVector>,
    /// `‖c‖` per cell — the SoA table behind skip layer 1.
    cent_norms: Vec<f64>,
    /// `max d(c, ·)` per cell.
    radii: Vec<f64>,
    /// Cell ids sorted by `(cent_norm, id)` — locates the
    /// nearest-in-norm cells to probe first, before any bound can fire.
    norm_order: Vec<u32>,
    /// `member_prefix[i]` = total members in `norm_order[..i]` — turns a
    /// bulk side retirement into one counter add. Length `k + 1`.
    member_prefix: Vec<u64>,
    /// `rad_before[i]` = max radius over `norm_order[..i]`,
    /// `rad_after[i]` = max radius over `norm_order[i..]` — the worst
    /// case a whole side of the norm-ordered walk can still reach.
    /// Length `k + 1`; empty ranges hold `-inf`.
    rad_before: Vec<f64>,
    rad_after: Vec<f64>,
    /// The max-norm pool row — the fixed anchor of the per-member
    /// `anch` tables (ties broken toward the smaller index).
    anchor: FeatureVector,
    quant: Option<Quantizer>,
}

impl WildIndex {
    /// Partitions `wild` into `config.cells` k-means cells (0 = auto:
    /// `√N`, clamped to `[1, min(N, 4096)]`) and, for
    /// [`IndexMode::Quantized`], fits the scalar quantizer and encodes
    /// every row. Deterministic for any `config.threads`.
    ///
    /// # Panics
    ///
    /// Panics when `wild` is empty or `config.index` is
    /// [`IndexMode::Scan`] (a plain scan needs no index).
    pub fn build(wild: &[FeatureVector], config: &NlsConfig) -> WildIndex {
        assert!(!wild.is_empty(), "cannot index an empty pool");
        assert!(config.index != IndexMode::Scan, "IndexMode::Scan takes no index");
        let threads = config.threads.max(1);
        let n = wild.len();
        let k = effective_cells(config.cells, n);

        // Distinct training rows via a partial Fisher–Yates shuffle on a
        // fixed RNG stream; the first k double as the initial centroids.
        let mut rng = Xoshiro256pp::seed_from_u64(KMEANS_SEED);
        let sample_len = n.min((k * 32).max(1024)).max(k);
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for i in 0..sample_len {
            let j = i + rng.gen_range(0..(n - i) as u64) as usize;
            idx.swap(i, j);
        }
        let sample: Vec<FeatureVector> = idx[..sample_len].iter().map(|&i| wild[i as usize]).collect();
        let mut centroids: Vec<FeatureVector> = sample[..k].to_vec();

        // Nearest-centroid assignment is exactly a k_best=1 pruned row
        // scan with the centroids as the "pool" — reuse it: parallel,
        // pruned, and already pinned bitwise thread-invariant.
        let assign_cfg = NlsConfig {
            threads,
            prune: true,
            k_best: 1,
            index: IndexMode::Scan,
            cells: 0,
            probes: 0,
        };
        for _ in 0..LLOYD_ITERS {
            let (_, assign) = row_minima(&sample, &centroids, &assign_cfg);
            // Serial mean update in sample order: deterministic f64 sums.
            let mut sums = vec![[0.0f64; FEATURE_DIM]; k];
            let mut counts = vec![0usize; k];
            for (row, &c) in sample.iter().zip(&assign) {
                counts[c] += 1;
                for (s, &x) in sums[c].iter_mut().zip(row.as_slice()) {
                    *s += x;
                }
            }
            for (c, count) in counts.iter().enumerate() {
                if *count > 0 {
                    let inv = 1.0 / *count as f64;
                    for (slot, s) in centroids[c].as_mut_slice().iter_mut().zip(&sums[c]) {
                        *slot = s * inv;
                    }
                }
                // Empty cell: keep the previous centroid (it may still
                // attract points next iteration; an empty final cell is
                // harmless — scanning it is a no-op).
            }
        }

        let (d2, assign) = row_minima(wild, &centroids, &assign_cfg);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut dists: Vec<Vec<f64>> = vec![Vec::new(); k];
        let mut radii = vec![0.0f64; k];
        for (i, (&c, &dd)) in assign.iter().zip(&d2).enumerate() {
            let r = dd.sqrt();
            members[c].push(i as u32);
            dists[c].push(r);
            // `f64::max` ignores a NaN distance (NaN members never beat
            // a finite threshold anyway — see the module docs).
            radii[c] = radii[c].max(r);
        }

        let quant = (config.index == IndexMode::Quantized).then(|| Quantizer::fit(wild, threads));
        let pool_codes = quant.as_ref().map(|q| encode_pool(q, wild, threads));

        // Anchor: the max-norm pool row (strict `>` keeps the first on
        // ties; NaN norms are passed over — a NaN anchor would disable
        // the bound). A far-out reference point spreads the projected
        // distances where the origin's projection concentrates them.
        let pool_norms: Vec<f64> = wild.iter().map(norm).collect();
        let mut anchor_at = 0usize;
        for (i, &pn) in pool_norms.iter().enumerate() {
            if !pn.is_nan()
                && (pool_norms[anchor_at].is_nan()
                    || pn.total_cmp(&pool_norms[anchor_at]) == std::cmp::Ordering::Greater)
            {
                anchor_at = i;
            }
        }
        let anchor = wild[anchor_at];

        let cells: Vec<Cell> = members
            .into_iter()
            .zip(dists)
            .map(|(m, ds)| {
                // Window order: ascending (distance to centroid, index);
                // `total_cmp` parks NaN distances at the far end.
                let mut order: Vec<u32> = (0..m.len() as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    ds[a as usize]
                        .total_cmp(&ds[b as usize])
                        .then(m[a as usize].cmp(&m[b as usize]))
                });
                let members: Vec<u32> = order.iter().map(|&p| m[p as usize]).collect();
                let dists: Vec<f64> = order.iter().map(|&p| ds[p as usize]).collect();
                let norms: Vec<f64> =
                    members.iter().map(|&i| pool_norms[i as usize]).collect();
                let anch: Vec<f64> = members
                    .iter()
                    .map(|&i| squared_euclidean(&wild[i as usize], &anchor).sqrt())
                    .collect();
                let rows: Vec<FeatureVector> =
                    members.iter().map(|&i| wild[i as usize]).collect();
                let same: Vec<bool> = (0..rows.len())
                    .map(|p| {
                        p > 0
                            && rows[p]
                                .as_slice()
                                .iter()
                                .zip(rows[p - 1].as_slice())
                                .all(|(a, b)| a.to_bits() == b.to_bits())
                    })
                    .collect();
                let codes = match &pool_codes {
                    Some(all) => {
                        let mut c = Vec::with_capacity(members.len() * FEATURE_DIM);
                        for &i in &members {
                            let at = i as usize * FEATURE_DIM;
                            c.extend_from_slice(&all[at..at + FEATURE_DIM]);
                        }
                        c
                    }
                    None => Vec::new(),
                };
                Cell { members, dists, norms, anch, rows, codes, same }
            })
            .collect();

        let cent_norms: Vec<f64> = centroids.iter().map(norm).collect();
        let mut norm_order: Vec<u32> = (0..k as u32).collect();
        norm_order.sort_unstable_by(|&a, &b| {
            cent_norms[a as usize].total_cmp(&cent_norms[b as usize]).then(a.cmp(&b))
        });
        let mut member_prefix = vec![0u64; k + 1];
        let mut rad_before = vec![f64::NEG_INFINITY; k + 1];
        let mut rad_after = vec![f64::NEG_INFINITY; k + 1];
        for i in 0..k {
            let c = norm_order[i] as usize;
            member_prefix[i + 1] = member_prefix[i] + cells[c].members.len() as u64;
            rad_before[i + 1] = rad_before[i].max(radii[c]);
        }
        for i in (0..k).rev() {
            rad_after[i] = rad_after[i + 1].max(radii[norm_order[i] as usize]);
        }
        WildIndex {
            n,
            cells,
            centroids,
            cent_norms,
            radii,
            norm_order,
            member_prefix,
            rad_before,
            rad_after,
            anchor,
            quant,
        }
    }

    /// Rows in the indexed pool.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: an index exists only for a non-empty pool.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of partition cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Whether the quantized fast path is available.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The k-best `(d², index)` list of one query row — same contract as
    /// the plain/pruned scans in `search.rs`, byte-identical output.
    ///
    /// The `probes.max(1)` cells nearest the query in norm are scanned
    /// unconditionally first (no bound can fire while the k-best list is
    /// empty, so spend that forced work where the threshold tightens
    /// fastest); the remaining cells sweep in id order through the skip
    /// chain described in the module docs.
    pub(crate) fn scan_row<P: Probe>(
        &self,
        sec: &FeatureVector,
        k_best: usize,
        probes: usize,
        used: Option<&[bool]>,
        use_quant: bool,
        probe: &mut P,
    ) -> Vec<(f64, usize)> {
        let sq = norm(sec);
        let aq = squared_euclidean(sec, &self.anchor).sqrt();
        let k = self.cells.len();
        let p = probes.max(1).min(k);

        // Phase one — probing. Walk outward from the query's position
        // in the norm-sorted cell order and gather the 8p nearest-in-norm
        // non-empty cells, compute their *exact* centroid distances, and
        // scan them nearest-centroid-first: the first cell scanned is
        // then the best available guess at the query's true home cell,
        // so the k-best threshold starts as tight as one cell can make
        // it. The first p cells scan unconditionally (no bound can fire
        // while the k-best list is short); the rest of the batch reuses
        // its already-paid-for centroid distance as the cell-level bound
        // `d(q, x) ≥ d(q, c) − r`.
        let start = self.norm_order.partition_point(|&c| self.cent_norms[c as usize] < sq);
        let (mut lo, mut hi) = (start, start);
        let mut list: Vec<(f64, usize)> = Vec::with_capacity(k_best);
        let mut cached_tau = f64::NAN;
        let mut t = f64::INFINITY;

        let batch_target = (p * 8).min(k);
        let mut batch: Vec<(f64, u32)> = Vec::with_capacity(batch_target);
        while batch.len() < batch_target && (lo > 0 || hi < k) {
            let left = (lo > 0)
                .then(|| (sq - self.cent_norms[self.norm_order[lo - 1] as usize]).abs());
            let right = (hi < k)
                .then(|| (self.cent_norms[self.norm_order[hi] as usize] - sq).abs());
            let take_left = match (left, right) {
                (None, None) => unreachable!("loop guard"),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let c = if take_left {
                lo -= 1;
                self.norm_order[lo] as usize
            } else {
                hi += 1;
                self.norm_order[hi - 1] as usize
            };
            if self.cells[c].members.is_empty() {
                continue;
            }
            let dd = early_exit_d2(sec, &self.centroids[c], f64::INFINITY)
                .expect("no early exit against an infinite bar");
            batch.push((dd.sqrt(), c as u32));
        }
        batch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (i, &(dq, c)) in batch.iter().enumerate() {
            let cell = &self.cells[c as usize];
            if i >= p {
                // d(q, c) is already exact — apply the cell-level bound
                // directly (tighter than layer 1's norm gap).
                let tau = threshold(&list, k_best);
                if tau.to_bits() != cached_tau.to_bits() {
                    cached_tau = tau;
                    t = if tau < f64::INFINITY {
                        (tau / PRUNE_SLACK).sqrt() * BOUND_CUSHION
                    } else {
                        f64::INFINITY
                    };
                }
                if dq - self.radii[c as usize] > t {
                    probe.cells_skipped(cell.members.len() as u64);
                    continue;
                }
            }
            self.scan_cell(cell, sec, dq, sq, aq, k_best, used, use_quant, &mut list, probe);
        }

        // Phase two — the remaining walk through the skip chain. `t` is
        // the distance-space threshold sqrt(tau / PRUNE_SLACK),
        // cushioned; recomputed only when tau moves (bitwise compare —
        // NaN-safe).
        while lo > 0 || hi < k {
            let tau = threshold(&list, k_best);
            if tau.to_bits() != cached_tau.to_bits() {
                cached_tau = tau;
                t = if tau < f64::INFINITY {
                    (tau / PRUNE_SLACK).sqrt() * BOUND_CUSHION
                } else {
                    f64::INFINITY
                };
            }
            // Bulk retirement: walking outward, |‖q‖ − ‖c‖| only grows,
            // so once the closest remaining cell on a side cannot reach
            // the threshold even with that side's largest radius, every
            // cell left on the side fails layer 1 at once. (False on a
            // NaN gap or an infinite t, like the per-cell test.)
            if lo > 0
                && (sq - self.cent_norms[self.norm_order[lo - 1] as usize]) - self.rad_before[lo]
                    > t
            {
                probe.cells_skipped(self.member_prefix[lo]);
                lo = 0;
                continue;
            }
            if hi < k
                && (self.cent_norms[self.norm_order[hi] as usize] - sq) - self.rad_after[hi] > t
            {
                probe.cells_skipped(self.member_prefix[k] - self.member_prefix[hi]);
                hi = k;
                continue;
            }
            let left = (lo > 0)
                .then(|| (sq - self.cent_norms[self.norm_order[lo - 1] as usize]).abs());
            let right = (hi < k)
                .then(|| (self.cent_norms[self.norm_order[hi] as usize] - sq).abs());
            let take_left = match (left, right) {
                (None, None) => unreachable!("loop guard"),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let c = if take_left {
                lo -= 1;
                self.norm_order[lo] as usize
            } else {
                hi += 1;
                self.norm_order[hi - 1] as usize
            };
            let cell = &self.cells[c];
            if cell.members.is_empty() {
                continue;
            }
            // Layer 1: norm gap. |‖q‖ − ‖c‖| − r > t retires the cell
            // for one subtract (false on NaN or an infinite t).
            let gap = (sq - self.cent_norms[c]).abs() - self.radii[c];
            if gap > t {
                probe.cells_skipped(cell.members.len() as u64);
                continue;
            }
            // Layer 2: early-exiting centroid distance against the
            // d²-space bar (r + t)² — crossing it mid-sum already proves
            // every member out of reach.
            let bar = (self.radii[c] + t) * (self.radii[c] + t) * BOUND_CUSHION;
            match early_exit_d2(sec, &self.centroids[c], bar) {
                None => probe.cells_skipped(cell.members.len() as u64),
                Some(dd) => self.scan_cell(
                    cell,
                    sec,
                    dd.sqrt(),
                    sq,
                    aq,
                    k_best,
                    used,
                    use_quant,
                    &mut list,
                    probe,
                ),
            }
        }
        list
    }

    /// Window scan of one cell (skip-chain layers 3–6). Starting from
    /// the query's position in the member ordering (ascending distance
    /// to centroid), expand outward taking the nearer side first; once a
    /// side's triangle gap `|d(q,c) − d(x,c)|` alone beats the
    /// threshold, every member further out on that side beats it too
    /// (the gap grows monotonically), so the whole side retires at once.
    /// Survivors pass the member norm and anchor bounds, then the
    /// quantized lower bound (when enabled), then re-rank exactly.
    ///
    /// Retirement fires only on a strict finite comparison, so a NaN
    /// query (NaN gaps) degrades to evaluating everything, and NaN
    /// members are only ever retired when the threshold is finite — a
    /// regime where `push_candidate` rejects NaN distances anyway.
    #[allow(clippy::too_many_arguments)]
    fn scan_cell<P: Probe>(
        &self,
        cell: &Cell,
        sec: &FeatureVector,
        dq: f64,
        sq: f64,
        aq: f64,
        k_best: usize,
        used: Option<&[bool]>,
        use_quant: bool,
        list: &mut Vec<(f64, usize)>,
        probe: &mut P,
    ) {
        let quant = use_quant
            .then(|| self.quant.as_ref().expect("quantized scan on an unquantized index"));
        let len = cell.members.len();
        let start = cell.dists.partition_point(|&r| r < dq);
        let (mut lo, mut hi) = (start, start);
        // Per-flank duplicate-run memo. Each flank visits consecutive
        // positions, so `same[pos]` (`same[pos + 1]` descending) says
        // whether the candidate is bitwise-identical to the flank's
        // previous row: if that row evaluated to `d2`, this one *is*
        // `d2`; if it early-exited, its d² beat a past threshold and
        // thresholds only shrink. Either way the kernel (and the
        // quantized bound walk) is paid once per duplicate run.
        let (mut lo_run, mut hi_run): (Option<DupRun>, Option<DupRun>) = (None, None);
        loop {
            // The flank candidates for this iteration are known before
            // their bounds are checked — start pulling their rows in.
            prefetch_row(&cell.rows, lo.wrapping_sub(1));
            prefetch_row(&cell.rows, hi);
            let tau = threshold(list, k_best);
            let left = (lo > 0).then(|| dq - cell.dists[lo - 1]);
            let right = (hi < len).then(|| cell.dists[hi] - dq);
            let (pos, gap) = match (left, right) {
                (None, None) => break,
                (Some(lg), None) => (lo - 1, lg),
                (None, Some(rg)) => (hi, rg),
                (Some(lg), Some(rg)) if lg <= rg => (lo - 1, lg),
                (Some(_), Some(rg)) => (hi, rg),
            };
            // The chosen gap is the smaller of the two sides, so when it
            // beats the bar both remaining flanks retire together.
            if gap > 0.0 && gap * gap * PRUNE_SLACK > tau {
                probe.cells_skipped((lo + (len - hi)) as u64);
                break;
            }
            let descending = pos < lo;
            let run = if descending {
                lo -= 1;
                // Chain bit between `pos` and the flank's previous
                // position `pos + 1` (out of range on the first visit of
                // a full-left window: no previous visit, no reuse).
                if !cell.same.get(pos + 1).copied().unwrap_or(false) {
                    lo_run = None;
                }
                &mut lo_run
            } else {
                hi += 1;
                if !cell.same[pos] {
                    hi_run = None;
                }
                &mut hi_run
            };
            let idx = cell.members[pos] as usize;
            if used.is_some_and(|u| u[idx]) {
                probe.masked(1);
                continue;
            }
            match *run {
                Some(DupRun::D2(d2)) => {
                    probe.evaluated();
                    if quant.is_some() {
                        probe.reranked();
                    }
                    push_candidate(list, k_best, d2, idx);
                    continue;
                }
                Some(DupRun::Exited) => {
                    probe.evaluated();
                    if quant.is_some() {
                        probe.reranked();
                    }
                    probe.early_exited();
                    continue;
                }
                None => {}
            }
            // Member norm bound — same rule the pruned scan applies —
            // then the anchor bound: the identical triangle argument
            // through the far anchor instead of the origin.
            let g = (sq - cell.norms[pos]).abs();
            if g > 0.0 && g * g * PRUNE_SLACK > tau {
                probe.pruned(1);
                continue;
            }
            let ga = (aq - cell.anch[pos]).abs();
            if ga > 0.0 && ga * ga * PRUNE_SLACK > tau {
                probe.pruned(1);
                continue;
            }
            if let Some(quant) = quant {
                if tau < f64::INFINITY {
                    let codes = &cell.codes[pos * FEATURE_DIM..(pos + 1) * FEATURE_DIM];
                    if quant.lower_bound_above(sec, codes, tau).is_none() {
                        probe.quant_rejected();
                        continue;
                    }
                }
            }
            probe.evaluated();
            if quant.is_some() {
                probe.reranked();
            }
            match early_exit_d2(sec, &cell.rows[pos], tau) {
                Some(d2) => {
                    push_candidate(list, k_best, d2, idx);
                    *run = Some(DupRun::D2(d2));
                }
                None => {
                    probe.early_exited();
                    *run = Some(DupRun::Exited);
                }
            }
        }
    }
}

/// Hints the first two cache lines of `rows[pos]` (the stretch an
/// early-exiting evaluation actually touches) into L1 ahead of use. The
/// window walk knows its next candidates on both flanks one iteration
/// early, which is enough lead time to hide part of the miss latency on
/// a pool too large for cache. Out-of-range `pos` is ignored; on
/// non-x86_64 targets this is a no-op. `_mm_prefetch` is a pure
/// performance hint with no memory-safety effect (the pointer is
/// derived from an in-bounds element).
#[inline(always)]
fn prefetch_row(rows: &[FeatureVector], pos: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(r) = rows.get(pos) {
        let p = r.as_slice().as_ptr().cast::<i8>();
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(p, _MM_HINT_T0);
            _mm_prefetch(p.add(64), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (rows, pos);
    }
}

/// Resolves the `cells` knob: 0 = auto (`√N`), clamped to
/// `[1, min(N, 4096)]` so tiny pools degenerate gracefully and huge
/// pools keep the per-query cell sweep cheap.
fn effective_cells(cells: usize, n: usize) -> usize {
    let k = if cells == 0 { (n as f64).sqrt().round() as usize } else { cells };
    k.clamp(1, n.min(4096))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::NoProbe;
    use patchdb_features::squared_euclidean;
    use patchdb_rt::rng::Xoshiro256pp;

    fn rand_pool(seed: u64, count: usize) -> Vec<FeatureVector> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut v = FeatureVector::zero();
                for x in v.as_mut_slice().iter_mut().take(6) {
                    *x = rng.gen_range(-5.0..5.0);
                }
                v
            })
            .collect()
    }

    fn plain_k_best(q: &FeatureVector, pool: &[FeatureVector], k: usize) -> Vec<(f64, usize)> {
        let mut list = Vec::with_capacity(k);
        for (n, w) in pool.iter().enumerate() {
            push_candidate(&mut list, k, squared_euclidean(q, w), n);
        }
        list
    }

    #[test]
    fn every_row_lands_in_exactly_one_cell() {
        let pool = rand_pool(5, 233);
        for mode in [IndexMode::Partitioned, IndexMode::Quantized] {
            let cfg = NlsConfig { index: mode, ..NlsConfig::serial() };
            let ix = WildIndex::build(&pool, &cfg);
            let mut seen: Vec<u32> = ix.cells.iter().flat_map(|c| c.members.iter().copied()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..pool.len() as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn indexed_scan_matches_plain_k_best_bitwise() {
        let pool = rand_pool(6, 180);
        let queries = rand_pool(7, 12);
        for mode in [IndexMode::Partitioned, IndexMode::Quantized] {
            for cells in [0usize, 1, 3, 64] {
                let cfg = NlsConfig { index: mode, cells, ..NlsConfig::serial() };
                let ix = WildIndex::build(&pool, &cfg);
                for q in &queries {
                    for k in [1usize, 4, 9] {
                        let want = plain_k_best(q, &pool, k);
                        let got = ix.scan_row(
                            q,
                            k,
                            1,
                            None,
                            mode == IndexMode::Quantized,
                            &mut NoProbe,
                        );
                        assert_eq!(got.len(), want.len());
                        for (a, b) in got.iter().zip(&want) {
                            assert_eq!(a.1, b.1, "mode {mode:?} cells {cells} k {k}");
                            assert_eq!(a.0.to_bits(), b.0.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn masked_rows_never_surface() {
        let pool = rand_pool(8, 96);
        let cfg = NlsConfig { index: IndexMode::Quantized, ..NlsConfig::serial() };
        let ix = WildIndex::build(&pool, &cfg);
        let used: Vec<bool> = (0..pool.len()).map(|i| i % 3 == 0).collect();
        let q = &rand_pool(9, 1)[0];
        let got = ix.scan_row(q, 5, 1, Some(&used), true, &mut NoProbe);
        assert!(got.iter().all(|&(_, n)| !used[n]));
        // Equals the plain masked scan.
        let mut want = Vec::new();
        for (n, w) in pool.iter().enumerate() {
            if !used[n] {
                push_candidate(&mut want, 5, squared_euclidean(q, w), n);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn side_tables_are_consistent_with_the_pool() {
        let pool = rand_pool(12, 160);
        let cfg = NlsConfig { index: IndexMode::Quantized, cells: 5, ..NlsConfig::serial() };
        let ix = WildIndex::build(&pool, &cfg);
        assert_eq!(ix.cells.len(), ix.centroids.len());
        assert_eq!(ix.cells.len(), ix.cent_norms.len());
        assert_eq!(ix.cells.len(), ix.radii.len());
        for (c, cell) in ix.cells.iter().enumerate() {
            assert_eq!(cell.members.len(), cell.dists.len());
            assert_eq!(cell.members.len(), cell.norms.len());
            assert_eq!(cell.members.len(), cell.rows.len());
            assert_eq!(cell.codes.len(), cell.members.len() * FEATURE_DIM);
            // Window order: member distances ascend.
            for w in cell.dists.windows(2) {
                assert!(w[0] <= w[1], "dists not sorted: {} > {}", w[0], w[1]);
            }
            for (i, (&m, row)) in cell.members.iter().zip(&cell.rows).enumerate() {
                assert_eq!(row.as_slice(), pool[m as usize].as_slice());
                // The stored distance/norm tables are the exact fl values
                // the bounds reason about.
                let want_d = squared_euclidean(row, &ix.centroids[c]).sqrt();
                assert_eq!(cell.dists[i].to_bits(), want_d.to_bits());
                assert_eq!(cell.norms[i].to_bits(), norm(row).to_bits());
                let want_a = squared_euclidean(row, &ix.anchor).sqrt();
                assert_eq!(cell.anch[i].to_bits(), want_a.to_bits());
                assert!(cell.dists[i] <= ix.radii[c], "member distance exceeds radius");
            }
            assert_eq!(ix.cent_norms[c].to_bits(), norm(&ix.centroids[c]).to_bits());
        }
        // The norm order is a permutation sorted by centroid norm.
        let mut ids: Vec<u32> = ix.norm_order.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..ix.cells.len() as u32).collect::<Vec<_>>());
        for w in ix.norm_order.windows(2) {
            assert!(ix.cent_norms[w[0] as usize] <= ix.cent_norms[w[1] as usize]);
        }
        // Bulk-retirement tables: member prefix sums and running max
        // radii over the norm order, in both directions.
        let k = ix.cells.len();
        assert_eq!(ix.member_prefix.len(), k + 1);
        assert_eq!(ix.rad_before.len(), k + 1);
        assert_eq!(ix.rad_after.len(), k + 1);
        assert_eq!(ix.member_prefix[k], pool.len() as u64);
        for i in 0..k {
            let c = ix.norm_order[i] as usize;
            assert_eq!(
                ix.member_prefix[i + 1] - ix.member_prefix[i],
                ix.cells[c].members.len() as u64
            );
            assert!(ix.rad_before[i + 1] >= ix.radii[c] && ix.rad_before[i + 1] >= ix.rad_before[i]);
            assert!(ix.rad_after[i] >= ix.radii[c] && ix.rad_after[i] >= ix.rad_after[i + 1]);
        }
    }

    #[test]
    fn effective_cells_clamps() {
        assert_eq!(effective_cells(0, 1), 1);
        assert_eq!(effective_cells(0, 10_000), 100);
        assert_eq!(effective_cells(64, 10), 10);
        assert_eq!(effective_cells(9_999_999, 1_000_000), 4096);
    }
}
