//! # patchdb-nls
//!
//! The core algorithmic contribution of PatchDB: **nearest link search**
//! (Section III-B, Algorithm 1), which selects, for every verified
//! security patch, its closest unclaimed wild patch in the weighted
//! 60-dimensional feature space — plus the three baselines it is compared
//! against in Table III (brute force, pseudo labeling, uncertainty-based
//! labeling) and the multi-round human-in-the-loop augmentation driver
//! behind Table II.
//!
//! ```rust
//! use patchdb_features::FeatureVector;
//! use patchdb_nls::nearest_link_search;
//!
//! let mut sec = FeatureVector::zero();
//! sec.as_mut_slice()[0] = 1.0;
//! let mut near = FeatureVector::zero();
//! near.as_mut_slice()[0] = 1.1;
//! let mut far = FeatureVector::zero();
//! far.as_mut_slice()[0] = 9.0;
//!
//! let links = nearest_link_search(&[sec], &[far, near]);
//! assert_eq!(links, vec![1]); // the wild patch nearest to `sec`
//! ```

#![warn(missing_docs)]

mod augment;
mod baselines;
mod index;
mod quant;
mod search;

pub use augment::{augment_rounds, augment_rounds_with, AugmentationRound, PoolSpec};
pub use baselines::{
    brute_force_candidates, pseudo_label_candidates, uncertainty_candidates,
};
pub use index::WildIndex;
pub use quant::Quantizer;
pub use search::{
    nearest_link_search, nearest_link_search_indexed, nearest_link_search_matrix,
    nearest_link_search_serial, nearest_link_search_with, row_minima, row_minima_indexed,
    total_link_distance, IndexMode, NlsConfig,
};
