//! The three candidate-selection baselines of Table III.

use patchdb_features::FeatureVector;
use patchdb_ml::{Classifier, Dataset, RandomForest};
use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

/// Brute force: every unlabeled patch is a candidate; sampling `n` of
/// them models "manually verify a random subset".
pub fn brute_force_candidates(pool_size: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..pool_size).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n);
    idx
}

/// Pseudo labeling (Lee, 2013): train one model on the labeled data and
/// take the `k` unlabeled points it is most confident are positive. The
/// paper uses a Random Forest, their best-performing single model.
pub fn pseudo_label_candidates(
    labeled_pos: &[FeatureVector],
    labeled_neg: &[FeatureVector],
    pool: &[FeatureVector],
    k: usize,
    seed: u64,
) -> Vec<usize> {
    let model = fit_forest(labeled_pos, labeled_neg, seed);
    let mut scored: Vec<(usize, f64)> = pool
        .iter()
        .enumerate()
        .map(|(i, x)| (i, model.predict_proba(x.as_slice())))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// Uncertainty-based labeling (Segal et al., 2006): an unlabeled patch is
/// a candidate only when **all ten** heterogeneous classifiers agree it is
/// positive — the consensus filter of Section IV-B. Unlike the other
/// methods the candidate count is data-driven, not chosen.
pub fn uncertainty_candidates(
    labeled_pos: &[FeatureVector],
    labeled_neg: &[FeatureVector],
    pool: &[FeatureVector],
    seed: u64,
) -> Vec<usize> {
    let data = to_dataset(labeled_pos, labeled_neg);
    let mut ensemble = patchdb_ml::uncertainty_ensemble(seed);
    for model in &mut ensemble {
        model.fit(&data);
    }
    pool.iter()
        .enumerate()
        .filter(|(_, x)| ensemble.iter().all(|m| m.predict(x.as_slice())))
        .map(|(i, _)| i)
        .collect()
}

fn to_dataset(pos: &[FeatureVector], neg: &[FeatureVector]) -> Dataset {
    let rows: Vec<Vec<f64>> = pos
        .iter()
        .chain(neg)
        .map(|v| v.as_slice().to_vec())
        .collect();
    let labels: Vec<bool> = std::iter::repeat(true)
        .take(pos.len())
        .chain(std::iter::repeat(false).take(neg.len()))
        .collect();
    Dataset::new(rows, labels).expect("feature vectors are rectangular and finite")
}

fn fit_forest(pos: &[FeatureVector], neg: &[FeatureVector], seed: u64) -> RandomForest {
    let data = to_dataset(pos, neg);
    let mut rf = RandomForest::new(24, 10, seed);
    rf.fit(&data);
    rf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(x: f64, y: f64) -> FeatureVector {
        let mut v = FeatureVector::zero();
        v.as_mut_slice()[0] = x;
        v.as_mut_slice()[1] = y;
        v
    }

    fn clusters() -> (Vec<FeatureVector>, Vec<FeatureVector>, Vec<FeatureVector>) {
        // Positives near (5,5), negatives near (0,0); pool mixes both.
        let pos: Vec<_> = (0..40).map(|i| fv(5.0 + (i % 5) as f64 * 0.1, 5.0)).collect();
        let neg: Vec<_> = (0..40).map(|i| fv((i % 5) as f64 * 0.1, 0.0)).collect();
        let mut pool = Vec::new();
        for i in 0..30 {
            pool.push(fv(5.0 + (i % 7) as f64 * 0.05, 4.9)); // positive-like
        }
        for i in 0..70 {
            pool.push(fv((i % 7) as f64 * 0.05, 0.1)); // negative-like
        }
        (pos, neg, pool)
    }

    #[test]
    fn brute_force_is_a_random_subset() {
        let c = brute_force_candidates(100, 10, 3);
        assert_eq!(c.len(), 10);
        assert!(c.iter().all(|&i| i < 100));
        assert_eq!(c, brute_force_candidates(100, 10, 3));
        assert_ne!(c, brute_force_candidates(100, 10, 4));
    }

    #[test]
    fn pseudo_labeling_prefers_positive_region() {
        let (pos, neg, pool) = clusters();
        let cands = pseudo_label_candidates(&pos, &neg, &pool, 20, 7);
        // The first 30 pool entries are the positive-like ones.
        let hits = cands.iter().filter(|&&i| i < 30).count();
        assert!(hits >= 18, "only {hits}/20 candidates in the positive region");
    }

    #[test]
    fn uncertainty_consensus_is_high_precision() {
        let (pos, neg, pool) = clusters();
        let cands = uncertainty_candidates(&pos, &neg, &pool, 5);
        assert!(!cands.is_empty());
        let hits = cands.iter().filter(|&&i| i < 30).count();
        assert_eq!(hits, cands.len(), "consensus picked a negative-region point");
        // And it is conservative: strictly fewer candidates than the pool's
        // positive-like half would allow.
        assert!(cands.len() <= 30);
    }
}
