//! Adversarial-geometry corpus for the index modes: inputs chosen to
//! stress every tie-break and degenerate-partition path — all-identical
//! rows, duplicate norms, exact distance ties, single-cell clusterings,
//! pools smaller than the requested cell count, candidate lists longer
//! than the pool, NaN features, and heavily masked pools. Every case
//! asserts byte-identical agreement with the explicit-matrix oracle
//! (and, through it, the serial Algorithm 1 loop).

use patchdb_features::{squared_euclidean, FeatureVector};
use patchdb_nls::{
    nearest_link_search_indexed, nearest_link_search_matrix, nearest_link_search_serial,
    nearest_link_search_with, IndexMode, NlsConfig,
};

const MODES: [IndexMode; 3] = [IndexMode::Scan, IndexMode::Partitioned, IndexMode::Quantized];

fn fv(vals: &[f64]) -> FeatureVector {
    let mut v = FeatureVector::zero();
    v.as_mut_slice()[..vals.len()].copy_from_slice(vals);
    v
}

/// Asserts every mode × knob combination equals the matrix oracle.
fn assert_oracle_agreement(sec: &[FeatureVector], wild: &[FeatureVector], tag: &str) {
    let matrix: Vec<Vec<f64>> = sec
        .iter()
        .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
        .collect();
    let oracle = nearest_link_search_matrix(&matrix);
    assert_eq!(oracle, nearest_link_search_serial(sec, wild), "{tag}: serial vs matrix");
    for index in MODES {
        for cells in [0usize, 1, 2, 1000] {
            for k_best in [1usize, 4, 64] {
                let cfg = NlsConfig {
                    threads: 2,
                    prune: true,
                    k_best,
                    index,
                    cells,
                    probes: 0,
                };
                assert_eq!(
                    nearest_link_search_with(sec, wild, &cfg),
                    oracle,
                    "{tag}: index={index:?} cells={cells} k_best={k_best}"
                );
            }
        }
    }
}

#[test]
fn all_identical_rows() {
    // Every wild row is the same point: all distances tie at the same
    // value, so the assignment is decided purely by the index tie-break.
    let sec = vec![fv(&[1.0, 2.0]); 4];
    let wild = vec![fv(&[1.5, 2.5]); 9];
    assert_oracle_agreement(&sec, &wild, "all_identical_rows");
}

#[test]
fn duplicate_norms_distinct_points() {
    // Points on a common sphere defeat norm-based pruning/ordering: the
    // norm gap between any two candidates is exactly zero.
    let r = 5.0f64;
    let wild: Vec<FeatureVector> = (0..12)
        .map(|i| {
            let t = i as f64 * 0.5;
            fv(&[r * t.cos(), r * t.sin()])
        })
        .collect();
    let sec = vec![fv(&[r, 0.1]), fv(&[-r, 0.0]), fv(&[0.0, r])];
    assert_oracle_agreement(&sec, &wild, "duplicate_norms");
}

#[test]
fn exact_distance_ties_across_cells() {
    // Mirror-image pairs: each security row is exactly equidistant from
    // two wild rows that k-means likely separates into different cells —
    // the tie must still resolve to the smaller index.
    let mut wild = Vec::new();
    for i in 0..6 {
        let x = 1.0 + i as f64;
        wild.push(fv(&[x, 0.0]));
        wild.push(fv(&[-x, 0.0]));
    }
    let sec = vec![fv(&[0.0, 0.0]), fv(&[0.0, 1.0]), fv(&[0.0, -2.0])];
    assert_oracle_agreement(&sec, &wild, "exact_ties");
}

#[test]
fn single_cell_degenerate_clustering() {
    // cells=1 collapses the partition to one cell: the index path must
    // degrade to a (blocked) exhaustive scan, not lose candidates.
    let wild: Vec<FeatureVector> =
        (0..17).map(|i| fv(&[i as f64 * 0.3, (i % 5) as f64])).collect();
    let sec = vec![fv(&[2.0, 1.0]), fv(&[0.1, 4.0])];
    let matrix: Vec<Vec<f64>> = sec
        .iter()
        .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
        .collect();
    let oracle = nearest_link_search_matrix(&matrix);
    for index in [IndexMode::Partitioned, IndexMode::Quantized] {
        let cfg = NlsConfig { cells: 1, index, ..NlsConfig::auto() };
        assert_eq!(nearest_link_search_with(&sec, &wild, &cfg), oracle, "{index:?}");
    }
}

#[test]
fn pool_smaller_than_cell_count() {
    // More requested cells than pool rows: the cell count must clamp to
    // the pool size and still cover every row exactly once.
    let wild = vec![fv(&[0.0]), fv(&[1.0]), fv(&[2.0]), fv(&[3.0])];
    let sec = vec![fv(&[0.4]), fv(&[2.6])];
    for index in [IndexMode::Partitioned, IndexMode::Quantized] {
        let cfg = NlsConfig { cells: 64, index, ..NlsConfig::auto() };
        let links = nearest_link_search_with(&sec, &wild, &cfg);
        let serial = nearest_link_search_serial(&sec, &wild);
        assert_eq!(links, serial, "{index:?}");
    }
}

#[test]
fn k_best_larger_than_pool() {
    // Candidate lists longer than the pool: every row's list holds the
    // whole pool, collisions never rescan.
    let wild = vec![fv(&[0.0]), fv(&[0.5]), fv(&[1.0])];
    let sec = vec![fv(&[0.1]), fv(&[0.2]), fv(&[0.3])];
    for index in MODES {
        let cfg = NlsConfig { k_best: 100, index, ..NlsConfig::auto() };
        assert_eq!(
            nearest_link_search_with(&sec, &wild, &cfg),
            nearest_link_search_serial(&sec, &wild),
            "{index:?}"
        );
    }
}

#[test]
fn nan_features_stay_safe_in_every_mode() {
    // NaN features poison distances. Byte-identity is only promised for
    // NaN-free inputs (a row whose candidates are *all* NaN has no
    // well-defined nearest), but the robustness contract holds in every
    // mode: the fast paths must never reject on a NaN bound comparison,
    // never panic, and still return valid distinct links.
    let mut bad = fv(&[1.0, 2.0]);
    bad.as_mut_slice()[2] = f64::NAN;
    let sec = vec![fv(&[0.0, 0.0]), bad];
    let wild = vec![fv(&[0.1, 0.0]), fv(&[5.0, 5.0]), bad, fv(&[0.2, 0.1])];
    for index in MODES {
        for cells in [0usize, 1, 2] {
            let cfg = NlsConfig { index, cells, ..NlsConfig::auto() };
            let links = nearest_link_search_with(&sec, &wild, &cfg);
            assert_eq!(links.len(), sec.len(), "index={index:?} cells={cells}");
            assert!(links.iter().all(|&n| n < wild.len()), "index={index:?} cells={cells}");
            assert_ne!(links[0], links[1], "index={index:?} cells={cells}");
            // The finite security row has a unique finite nearest
            // neighbor (wild 0 at d²=0.01); no mode may lose it to a
            // NaN-confused bound.
            assert_eq!(links[0], 0, "index={index:?} cells={cells}");
        }
    }
}

#[test]
fn heavily_masked_pool_matches_compacted_oracle() {
    // Kill all but sec.len() rows: the masked search has zero slack and
    // must land exactly on the surviving columns, through every mode.
    let wild: Vec<FeatureVector> =
        (0..20).map(|i| fv(&[i as f64, (i * i % 7) as f64])).collect();
    let sec = vec![fv(&[3.3, 1.0]), fv(&[11.0, 2.0]), fv(&[16.2, 0.0])];
    let dead: Vec<bool> = (0..wild.len()).map(|i| ![4, 11, 17].contains(&i)).collect();
    for index in MODES {
        let cfg = NlsConfig { index, ..NlsConfig::auto() };
        let links = nearest_link_search_indexed(&sec, &wild, &cfg, None, Some(&dead));
        let mut claimed = links.clone();
        claimed.sort_unstable();
        assert_eq!(claimed, vec![4, 11, 17], "{index:?}: must claim every live column");
    }
}

#[test]
fn clustered_geometry_with_far_outliers() {
    // Tight clusters plus extreme outliers: the cell bound should skip
    // aggressively here, which makes it the case most likely to expose
    // an unsound skip.
    let mut wild = Vec::new();
    for c in 0..4 {
        let cx = c as f64 * 100.0;
        for i in 0..8 {
            wild.push(fv(&[cx + i as f64 * 1e-3, c as f64]));
        }
    }
    wild.push(fv(&[1e9, 0.0]));
    wild.push(fv(&[-1e9, 0.0]));
    let sec = vec![
        fv(&[0.0, 0.0]),
        fv(&[100.0, 1.0]),
        fv(&[200.0, 2.0]),
        fv(&[300.0, 3.0]),
        fv(&[150.0, 1.5]), // equidistant between clusters 1 and 2
    ];
    assert_oracle_agreement(&sec, &wild, "clustered_with_outliers");
}
