//! Property tests for the nearest link search: output validity, agreement
//! between the matrix-free and explicit-matrix implementations, and
//! nearest-neighbor dominance. Runs on `patchdb_rt::check`.

use patchdb_rt::check::{check, Gen};

use patchdb_features::{euclidean, squared_euclidean, FeatureVector};
use patchdb_nls::{
    nearest_link_search, nearest_link_search_indexed, nearest_link_search_matrix,
    nearest_link_search_serial, nearest_link_search_with, row_minima, total_link_distance,
    IndexMode, NlsConfig, Quantizer, WildIndex,
};

const MODES: [IndexMode; 3] = [IndexMode::Scan, IndexMode::Partitioned, IndexMode::Quantized];

const CASES: u32 = 128;

fn fv(vals: Vec<f64>) -> FeatureVector {
    let mut v = FeatureVector::zero();
    for (slot, x) in v.as_mut_slice().iter_mut().zip(vals) {
        *slot = x;
    }
    v
}

/// `[min, max]` points with 3 coordinates each in [-10, 10).
fn points(g: &mut Gen, min: usize, max: usize) -> Vec<FeatureVector> {
    g.vec_with(min, max, |g| fv(vec![
        g.f64_in(-10.0, 10.0),
        g.f64_in(-10.0, 10.0),
        g.f64_in(-10.0, 10.0),
    ]))
}

/// Links are a valid partial injection: every security patch gets a
/// distinct wild index in range.
#[test]
fn links_are_valid() {
    check("links_are_valid", CASES, |g| {
        let sec = points(g, 1, 19);
        let wild = points(g, 30, 59);
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links.len(), sec.len());
        assert!(links.iter().all(|&n| n < wild.len()));
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sec.len(), "duplicate links");
    });
}

/// Matrix-free and explicit-matrix implementations agree exactly. The
/// matrix is fed squared distances because that is the (exact) space the
/// matrix-free search compares in.
#[test]
fn implementations_agree() {
    check("implementations_agree", CASES, |g| {
        let sec = points(g, 1, 14);
        let wild = points(g, 20, 39);
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
            .collect();
        assert_eq!(nearest_link_search(&sec, &wild), nearest_link_search_matrix(&matrix));
    });
}

/// Tie-heavy instances: points drawn from a small palette so exact
/// duplicate distances (and heavy collisions) are guaranteed.
fn palette_points(g: &mut Gen, palette: &[FeatureVector], min: usize, max: usize) -> Vec<FeatureVector> {
    let n = g.usize_in(min, max);
    (0..n).map(|_| palette[g.index(palette.len())]).collect()
}

/// The parallel + pruned + indexed search equals the faithful serial
/// Algorithm 1 loop *and* the explicit-matrix reference for every
/// configuration — index modes Scan/Partitioned/Quantized, thread counts
/// 1/2/8, pruning on/off, several candidate-list lengths and cell counts
/// — including on tie-heavy instances.
#[test]
fn configs_agree_with_serial_and_matrix() {
    check("configs_agree_with_serial_and_matrix", CASES, |g| {
        let (sec, wild) = if g.bool() {
            (points(g, 1, 12), points(g, 16, 31))
        } else {
            let palette = points(g, 4, 9);
            (palette_points(g, &palette, 1, 12), palette_points(g, &palette, 16, 31))
        };
        let reference = nearest_link_search_serial(&sec, &wild);
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
            .collect();
        assert_eq!(reference, nearest_link_search_matrix(&matrix), "serial vs matrix");
        // Each case draws one (cells, probes) point; the mode × threads ×
        // prune × k_best grid is swept exhaustively within it.
        let cells = g.usize_in(0, 6);
        let probes = g.usize_in(0, 3);
        for index in MODES {
            for threads in [1usize, 2, 8] {
                for prune in [false, true] {
                    for k_best in [1usize, 4] {
                        let cfg = NlsConfig {
                            threads,
                            prune,
                            k_best,
                            index,
                            cells,
                            probes,
                        };
                        assert_eq!(
                            nearest_link_search_with(&sec, &wild, &cfg),
                            reference,
                            "index={index:?} threads={threads} prune={prune} \
                             k_best={k_best} cells={cells} probes={probes}"
                        );
                    }
                }
            }
        }
    });
}

/// A masked search over the full pool equals a plain search over the
/// physically compacted pool, in every index mode — the equivalence the
/// augmentation driver's alive-bitmap (and cross-round index reuse)
/// stands on.
#[test]
fn masked_search_equals_compacted_search() {
    check("masked_search_equals_compacted_search", CASES, |g| {
        let sec = points(g, 1, 8);
        let wild = points(g, 20, 39);
        // Kill a random subset, keeping at least sec.len() alive.
        let mut dead = vec![false; wild.len()];
        let max_dead = wild.len() - sec.len();
        for _ in 0..g.usize_in(0, max_dead) {
            dead[g.index(wild.len())] = true;
        }
        while dead.iter().filter(|&&d| d).count() > max_dead {
            dead[g.index(wild.len())] = false;
        }
        let compacted: Vec<FeatureVector> = wild
            .iter()
            .zip(&dead)
            .filter(|(_, &d)| !d)
            .map(|(v, _)| *v)
            .collect();
        // full-pool index → compacted-pool index
        let to_full: Vec<usize> =
            (0..wild.len()).filter(|&i| !dead[i]).collect();
        for index in MODES {
            let cfg = NlsConfig { index, ..NlsConfig::auto() };
            let masked = nearest_link_search_indexed(&sec, &wild, &cfg, None, Some(&dead));
            let compact_links = nearest_link_search_with(&sec, &compacted, &cfg);
            let remapped: Vec<usize> = compact_links.iter().map(|&l| to_full[l]).collect();
            assert_eq!(masked, remapped, "mode {index:?}");
        }
    });
}

/// A prebuilt index reused across searches (the augmentation driver's
/// pattern) gives the same answer as building one per call.
#[test]
fn prebuilt_index_matches_fresh_build() {
    check("prebuilt_index_matches_fresh_build", CASES / 2, |g| {
        let wild = points(g, 16, 47);
        let cfg = NlsConfig {
            index: if g.bool() { IndexMode::Quantized } else { IndexMode::Partitioned },
            cells: g.usize_in(0, 5),
            ..NlsConfig::auto()
        };
        let ix = WildIndex::build(&wild, &cfg);
        for _ in 0..3 {
            let sec = points(g, 1, 6);
            assert_eq!(
                nearest_link_search_indexed(&sec, &wild, &cfg, Some(&ix), None),
                nearest_link_search_with(&sec, &wild, &cfg),
            );
        }
    });
}

/// Quantizer round trip: every encoded coordinate lands inside its own
/// bucket (`b[c] ≤ x ≤ b[c+1]`) — the invariant the bound soundness
/// argument rests on.
#[test]
fn quantizer_round_trip_respects_buckets() {
    check("quantizer_round_trip_respects_buckets", CASES, |g| {
        let n = g.usize_in(1, 64);
        let scale = g.f64_in(1e-6, 1e6);
        let pool: Vec<FeatureVector> = (0..n)
            .map(|_| {
                let mut v = FeatureVector::zero();
                for x in v.as_mut_slice() {
                    *x = g.f64_in(-scale, scale);
                }
                v
            })
            .collect();
        let q = Quantizer::fit(&pool, g.usize_in(1, 8));
        for v in &pool {
            let codes = q.encode(v);
            for (d, &x) in v.as_slice().iter().enumerate() {
                let (lo, hi) = q.bucket(d, codes[d]);
                assert!(lo <= x && x <= hi, "dim {d}: {x} outside [{lo}, {hi}]");
            }
        }
    });
}

/// Bound soundness: for random pools and queries (queries deliberately
/// allowed outside the fitted range), the quantized lower bound never
/// exceeds the exact squared distance — so the fast path can never
/// wrongly reject a candidate the exhaustive scan would keep.
#[test]
fn quantizer_bound_is_sound() {
    check("quantizer_bound_is_sound", CASES, |g| {
        let n = g.usize_in(1, 48);
        let pool: Vec<FeatureVector> = (0..n)
            .map(|_| {
                let mut v = FeatureVector::zero();
                for x in v.as_mut_slice() {
                    *x = g.f64_in(-10.0, 10.0);
                }
                v
            })
            .collect();
        let q = Quantizer::fit(&pool, 1);
        let mut query = FeatureVector::zero();
        for x in query.as_mut_slice() {
            *x = g.f64_in(-30.0, 30.0);
        }
        for v in &pool {
            let codes = q.encode(v);
            let bound = q.lower_bound(&query, &codes);
            let exact = squared_euclidean(&query, v);
            assert!(bound <= exact, "bound {bound} > exact {exact}");
            // The early exit agrees with the full bound at tau == bound.
            assert_eq!(q.lower_bound_above(&query, &codes, bound), Some(bound));
        }
    });
}

/// The init pass (`row_minima`) is bitwise identical across
/// configurations: same argmin columns, same squared distances.
#[test]
fn row_minima_bitwise_stable() {
    check("row_minima_bitwise_stable", CASES, |g| {
        let sec = points(g, 1, 10);
        let wild = points(g, 12, 47);
        let (u0, v0) = row_minima(&sec, &wild, &NlsConfig::serial());
        for index in MODES {
            for threads in [2usize, 8] {
                for prune in [false, true] {
                    let cfg = NlsConfig { threads, prune, k_best: 8, index, ..NlsConfig::serial() };
                    let (u, v) = row_minima(&sec, &wild, &cfg);
                    assert_eq!(v0, v, "argmin drift: index={index:?} threads={threads} prune={prune}");
                    for (a, b) in u0.iter().zip(&u) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "distance drift: index={index:?} threads={threads} prune={prune}"
                        );
                    }
                }
            }
        }
    });
}

/// The single-security case is exactly nearest-neighbor search.
#[test]
fn single_row_is_nearest_neighbor() {
    check("single_row_is_nearest_neighbor", CASES, |g| {
        let s = points(g, 1, 1);
        let wild = points(g, 5, 39);
        let links = nearest_link_search(&s, &wild);
        let nn = wild
            .iter()
            .enumerate()
            .min_by(|a, b| euclidean(&s[0], a.1).total_cmp(&euclidean(&s[0], b.1)))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(euclidean(&s[0], &wild[links[0]]), euclidean(&s[0], &wild[nn]));
    });
}

/// The greedy total never beats the sum of unconstrained per-row
/// minima (lower bound) — a sanity corridor for the objective.
#[test]
fn objective_sanity() {
    check("objective_sanity", CASES, |g| {
        let sec = points(g, 2, 11);
        let wild = points(g, 24, 47);
        let links = nearest_link_search(&sec, &wild);
        let total = total_link_distance(&sec, &wild, &links);
        let lower: f64 = sec
            .iter()
            .map(|s| {
                wild.iter()
                    .map(|w| euclidean(s, w))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!(total + 1e-9 >= lower, "total {total} below lower bound {lower}");
    });
}
