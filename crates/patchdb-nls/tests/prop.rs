//! Property tests for the nearest link search: output validity, agreement
//! between the matrix-free and explicit-matrix implementations, and
//! nearest-neighbor dominance.

use proptest::prelude::*;

use patchdb_features::{euclidean, FeatureVector};
use patchdb_nls::{nearest_link_search, nearest_link_search_matrix, total_link_distance};

fn fv(vals: Vec<f64>) -> FeatureVector {
    let mut v = FeatureVector::zero();
    for (slot, x) in v.as_mut_slice().iter_mut().zip(vals) {
        *slot = x;
    }
    v
}

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<FeatureVector>> {
    prop::collection::vec(
        prop::collection::vec(-10.0f64..10.0, 3).prop_map(fv),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Links are a valid partial injection: every security patch gets a
    /// distinct wild index in range.
    #[test]
    fn links_are_valid((sec, wild) in (points(1..20), points(30..60))) {
        let links = nearest_link_search(&sec, &wild);
        prop_assert_eq!(links.len(), sec.len());
        prop_assert!(links.iter().all(|&n| n < wild.len()));
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sec.len(), "duplicate links");
    }

    /// Matrix-free and explicit-matrix implementations agree exactly.
    #[test]
    fn implementations_agree((sec, wild) in (points(1..15), points(20..40))) {
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| euclidean(s, w)).collect())
            .collect();
        prop_assert_eq!(
            nearest_link_search(&sec, &wild),
            nearest_link_search_matrix(&matrix)
        );
    }

    /// The single-security case is exactly nearest-neighbor search.
    #[test]
    fn single_row_is_nearest_neighbor((s, wild) in (points(1..2), points(5..40))) {
        let links = nearest_link_search(&s, &wild);
        let nn = wild
            .iter()
            .enumerate()
            .min_by(|a, b| euclidean(&s[0], a.1).total_cmp(&euclidean(&s[0], b.1)))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(euclidean(&s[0], &wild[links[0]]), euclidean(&s[0], &wild[nn]));
    }

    /// The greedy total never beats the sum of unconstrained per-row
    /// minima (lower bound), and never exceeds M × the max row minimum +
    /// slack — a sanity corridor for the objective.
    #[test]
    fn objective_sanity((sec, wild) in (points(2..12), points(24..48))) {
        let links = nearest_link_search(&sec, &wild);
        let total = total_link_distance(&sec, &wild, &links);
        let lower: f64 = sec
            .iter()
            .map(|s| {
                wild.iter()
                    .map(|w| euclidean(s, w))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        prop_assert!(total + 1e-9 >= lower, "total {total} below lower bound {lower}");
    }
}
