//! Property tests for the nearest link search: output validity, agreement
//! between the matrix-free and explicit-matrix implementations, and
//! nearest-neighbor dominance. Runs on `patchdb_rt::check`.

use patchdb_rt::check::{check, Gen};

use patchdb_features::{euclidean, squared_euclidean, FeatureVector};
use patchdb_nls::{
    nearest_link_search, nearest_link_search_matrix, nearest_link_search_serial,
    nearest_link_search_with, row_minima, total_link_distance, NlsConfig,
};

const CASES: u32 = 128;

fn fv(vals: Vec<f64>) -> FeatureVector {
    let mut v = FeatureVector::zero();
    for (slot, x) in v.as_mut_slice().iter_mut().zip(vals) {
        *slot = x;
    }
    v
}

/// `[min, max]` points with 3 coordinates each in [-10, 10).
fn points(g: &mut Gen, min: usize, max: usize) -> Vec<FeatureVector> {
    g.vec_with(min, max, |g| fv(vec![
        g.f64_in(-10.0, 10.0),
        g.f64_in(-10.0, 10.0),
        g.f64_in(-10.0, 10.0),
    ]))
}

/// Links are a valid partial injection: every security patch gets a
/// distinct wild index in range.
#[test]
fn links_are_valid() {
    check("links_are_valid", CASES, |g| {
        let sec = points(g, 1, 19);
        let wild = points(g, 30, 59);
        let links = nearest_link_search(&sec, &wild);
        assert_eq!(links.len(), sec.len());
        assert!(links.iter().all(|&n| n < wild.len()));
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sec.len(), "duplicate links");
    });
}

/// Matrix-free and explicit-matrix implementations agree exactly. The
/// matrix is fed squared distances because that is the (exact) space the
/// matrix-free search compares in.
#[test]
fn implementations_agree() {
    check("implementations_agree", CASES, |g| {
        let sec = points(g, 1, 14);
        let wild = points(g, 20, 39);
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
            .collect();
        assert_eq!(nearest_link_search(&sec, &wild), nearest_link_search_matrix(&matrix));
    });
}

/// Tie-heavy instances: points drawn from a small palette so exact
/// duplicate distances (and heavy collisions) are guaranteed.
fn palette_points(g: &mut Gen, palette: &[FeatureVector], min: usize, max: usize) -> Vec<FeatureVector> {
    let n = g.usize_in(min, max);
    (0..n).map(|_| palette[g.index(palette.len())]).collect()
}

/// The parallel + pruned search equals the faithful serial Algorithm 1
/// loop *and* the explicit-matrix reference for every configuration —
/// thread counts 1/2/8, pruning on/off, several candidate-list lengths —
/// including on tie-heavy instances.
#[test]
fn configs_agree_with_serial_and_matrix() {
    check("configs_agree_with_serial_and_matrix", CASES, |g| {
        let (sec, wild) = if g.bool() {
            (points(g, 1, 12), points(g, 16, 31))
        } else {
            let palette = points(g, 4, 9);
            (palette_points(g, &palette, 1, 12), palette_points(g, &palette, 16, 31))
        };
        let reference = nearest_link_search_serial(&sec, &wild);
        let matrix: Vec<Vec<f64>> = sec
            .iter()
            .map(|s| wild.iter().map(|w| squared_euclidean(s, w)).collect())
            .collect();
        assert_eq!(reference, nearest_link_search_matrix(&matrix), "serial vs matrix");
        for threads in [1usize, 2, 8] {
            for prune in [false, true] {
                for k_best in [1usize, 4] {
                    let cfg = NlsConfig { threads, prune, k_best };
                    assert_eq!(
                        nearest_link_search_with(&sec, &wild, &cfg),
                        reference,
                        "threads={threads} prune={prune} k_best={k_best}"
                    );
                }
            }
        }
    });
}

/// The init pass (`row_minima`) is bitwise identical across
/// configurations: same argmin columns, same squared distances.
#[test]
fn row_minima_bitwise_stable() {
    check("row_minima_bitwise_stable", CASES, |g| {
        let sec = points(g, 1, 10);
        let wild = points(g, 12, 47);
        let (u0, v0) = row_minima(&sec, &wild, &NlsConfig::serial());
        for threads in [2usize, 8] {
            for prune in [false, true] {
                let cfg = NlsConfig { threads, prune, k_best: 8 };
                let (u, v) = row_minima(&sec, &wild, &cfg);
                assert_eq!(v0, v, "argmin drift: threads={threads} prune={prune}");
                for (a, b) in u0.iter().zip(&u) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "distance drift: threads={threads} prune={prune}"
                    );
                }
            }
        }
    });
}

/// The single-security case is exactly nearest-neighbor search.
#[test]
fn single_row_is_nearest_neighbor() {
    check("single_row_is_nearest_neighbor", CASES, |g| {
        let s = points(g, 1, 1);
        let wild = points(g, 5, 39);
        let links = nearest_link_search(&s, &wild);
        let nn = wild
            .iter()
            .enumerate()
            .min_by(|a, b| euclidean(&s[0], a.1).total_cmp(&euclidean(&s[0], b.1)))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(euclidean(&s[0], &wild[links[0]]), euclidean(&s[0], &wild[nn]));
    });
}

/// The greedy total never beats the sum of unconstrained per-row
/// minima (lower bound) — a sanity corridor for the objective.
#[test]
fn objective_sanity() {
    check("objective_sanity", CASES, |g| {
        let sec = points(g, 2, 11);
        let wild = points(g, 24, 47);
        let links = nearest_link_search(&sec, &wild);
        let total = total_link_distance(&sec, &wild, &links);
        let lower: f64 = sec
            .iter()
            .map(|s| {
                wild.iter()
                    .map(|w| euclidean(s, w))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!(total + 1e-9 >= lower, "total {total} below lower bound {lower}");
    });
}
