//! Property tests for the ML substrate: probability bounds, split
//! bookkeeping, metric identities, and determinism across the whole
//! classifier zoo. Runs on `patchdb_rt::check`, the in-repo harness.

use patchdb_rt::check::{check, Gen};

use patchdb_ml::{
    evaluate, AdaBoost, Classifier, ConfusionMatrix, Dataset, DecisionTree,
    GaussianNaiveBayes, KNearestNeighbors, LogisticRegression, Metrics, RandomForest,
    SplitCriterion,
};

const CASES: u32 = 48;

fn dataset(g: &mut Gen) -> Dataset {
    let n = g.usize_in(4, 59);
    let width = g.usize_in(1, 3);
    let seed = g.u64();
    // Deterministic pseudo-random rows with a learnable-but-noisy rule.
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 100.0
    };
    for _ in 0..n {
        let row: Vec<f64> = (0..width).map(|_| next()).collect();
        labels.push(row[0] > 5.0);
        rows.push(row);
    }
    // Force both classes to exist.
    let half = labels.len() / 2;
    labels[0] = true;
    labels[half] = false;
    rows[0][0] = 9.0;
    rows[half][0] = 1.0;
    Dataset::new(rows, labels).unwrap()
}

fn all_models() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(RandomForest::new(6, 4, 1)),
        Box::new(DecisionTree::new(SplitCriterion::Gini, 4)),
        Box::new(DecisionTree::new(SplitCriterion::Entropy, 4)),
        Box::new(LogisticRegression::new(2)),
        Box::new(GaussianNaiveBayes::new()),
        Box::new(KNearestNeighbors::new(3)),
        Box::new(AdaBoost::new(6, 1, 3)),
    ]
}

/// Every classifier's probabilities stay in [0, 1] on arbitrary data.
#[test]
fn probabilities_bounded() {
    check("probabilities_bounded", CASES, |g| {
        let data = dataset(g);
        for mut model in all_models() {
            model.fit(&data);
            for i in 0..data.len() {
                let p = model.predict_proba(data.example(i).0);
                assert!((0.0..=1.0).contains(&p), "{}: p = {p}", model.name());
                assert!(p.is_finite());
            }
        }
    });
}

/// Splits partition the data and preserve the class counts.
#[test]
fn split_partitions() {
    check("split_partitions", CASES, |g| {
        let data = dataset(g);
        let frac = g.f64_in(0.1, 0.9);
        let seed = g.u64();
        let (train, test) = data.split(frac, seed);
        assert_eq!(train.len() + test.len(), data.len());
        assert_eq!(train.positives() + test.positives(), data.positives());
    });
}

/// Evaluation totals equal the dataset size; metric identities hold.
#[test]
fn metric_identities() {
    check("metric_identities", CASES, |g| {
        let data = dataset(g);
        let mut model = DecisionTree::new(SplitCriterion::Gini, 3);
        model.fit(&data);
        let m = evaluate(&model, &data);
        assert_eq!(m.confusion.total(), data.len());
        let p = m.precision();
        let r = m.recall();
        let f1 = m.f1();
        if p + r > 0.0 {
            assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
        }
        assert!(m.accuracy() >= 0.0 && m.accuracy() <= 1.0);
    });
}

/// Confusion-matrix recording is order-insensitive in aggregate.
#[test]
fn confusion_accumulates() {
    check("confusion_accumulates", CASES, |g| {
        let preds = g.vec_with(0, 63, |g| (g.bool(), g.bool()));
        let mut cm = ConfusionMatrix::default();
        for (p, a) in &preds {
            cm.record(*p, *a);
        }
        assert_eq!(cm.total(), preds.len());
        let m = Metrics::new(cm);
        let tp = preds.iter().filter(|(p, a)| *p && *a).count();
        let fp = preds.iter().filter(|(p, a)| *p && !*a).count();
        if tp + fp > 0 {
            assert!((m.precision() - tp as f64 / (tp + fp) as f64).abs() < 1e-12);
        }
    });
}

/// Training twice from the same seeds yields identical predictions.
#[test]
fn determinism() {
    check("determinism", CASES, |g| {
        let data = dataset(g);
        let mut a = RandomForest::new(6, 4, 9);
        let mut b = RandomForest::new(6, 4, 9);
        a.fit(&data);
        b.fit(&data);
        for i in 0..data.len() {
            let x = data.example(i).0;
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    });
}
