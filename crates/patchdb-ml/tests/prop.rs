//! Property tests for the ML substrate: probability bounds, split
//! bookkeeping, metric identities, and determinism across the whole
//! classifier zoo.

use proptest::prelude::*;

use patchdb_ml::{
    evaluate, AdaBoost, Classifier, ConfusionMatrix, Dataset, DecisionTree,
    GaussianNaiveBayes, KNearestNeighbors, LogisticRegression, Metrics, RandomForest,
    SplitCriterion,
};

fn dataset() -> impl Strategy<Value = Dataset> {
    (4usize..60, 1usize..4, any::<u64>()).prop_map(|(n, width, seed)| {
        // Deterministic pseudo-random rows with a learnable-but-noisy rule.
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        for _ in 0..n {
            let row: Vec<f64> = (0..width).map(|_| next()).collect();
            labels.push(row[0] > 5.0);
            rows.push(row);
        }
        // Force both classes to exist.
        let half = labels.len() / 2;
        labels[0] = true;
        labels[half] = false;
        let mut rows = rows;
        rows[0][0] = 9.0;
        rows[half][0] = 1.0;
        Dataset::new(rows, labels).unwrap()
    })
}

fn all_models() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(RandomForest::new(6, 4, 1)),
        Box::new(DecisionTree::new(SplitCriterion::Gini, 4)),
        Box::new(DecisionTree::new(SplitCriterion::Entropy, 4)),
        Box::new(LogisticRegression::new(2)),
        Box::new(GaussianNaiveBayes::new()),
        Box::new(KNearestNeighbors::new(3)),
        Box::new(AdaBoost::new(6, 1, 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every classifier's probabilities stay in [0, 1] on arbitrary data.
    #[test]
    fn probabilities_bounded(data in dataset()) {
        for mut model in all_models() {
            model.fit(&data);
            for i in 0..data.len() {
                let p = model.predict_proba(data.example(i).0);
                prop_assert!((0.0..=1.0).contains(&p), "{}: p = {p}", model.name());
                prop_assert!(p.is_finite());
            }
        }
    }

    /// Splits partition the data and preserve the class counts.
    #[test]
    fn split_partitions(data in dataset(), frac in 0.1f64..0.9, seed in any::<u64>()) {
        let (train, test) = data.split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        prop_assert_eq!(train.positives() + test.positives(), data.positives());
    }

    /// Evaluation totals equal the dataset size; metric identities hold.
    #[test]
    fn metric_identities(data in dataset()) {
        let mut model = DecisionTree::new(SplitCriterion::Gini, 3);
        model.fit(&data);
        let m = evaluate(&model, &data);
        prop_assert_eq!(m.confusion.total(), data.len());
        let p = m.precision();
        let r = m.recall();
        let f1 = m.f1();
        if p + r > 0.0 {
            prop_assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
        }
        prop_assert!(m.accuracy() >= 0.0 && m.accuracy() <= 1.0);
    }

    /// Confusion-matrix recording is order-insensitive in aggregate.
    #[test]
    fn confusion_accumulates(preds in prop::collection::vec((any::<bool>(), any::<bool>()), 0..64)) {
        let mut cm = ConfusionMatrix::default();
        for (p, a) in &preds {
            cm.record(*p, *a);
        }
        prop_assert_eq!(cm.total(), preds.len());
        let m = Metrics::new(cm);
        let tp = preds.iter().filter(|(p, a)| *p && *a).count();
        let fp = preds.iter().filter(|(p, a)| *p && !*a).count();
        if tp + fp > 0 {
            prop_assert!((m.precision() - tp as f64 / (tp + fp) as f64).abs() < 1e-12);
        }
    }

    /// Training twice from the same seeds yields identical predictions.
    #[test]
    fn determinism(data in dataset()) {
        let mut a = RandomForest::new(6, 4, 9);
        let mut b = RandomForest::new(6, 4, 9);
        a.fit(&data);
        b.fit(&data);
        for i in 0..data.len() {
            let x = data.example(i).0;
            prop_assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }
}
