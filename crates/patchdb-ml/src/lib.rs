//! # patchdb-ml
//!
//! From-scratch classical machine learning, standing in for the Weka and
//! scikit-learn models PatchDB's evaluation uses:
//!
//! * the Random Forest of Tables III & VI,
//! * the ten-classifier ensemble of the uncertainty-based-labeling
//!   baseline (Random Forest, SVM, Logistic Regression, SGD, SMO, Naive
//!   Bayes, Bayesian network, J48, REPTree, Voted Perceptron),
//! * the train/test split and precision/recall machinery behind every
//!   reported number.
//!
//! Everything operates on plain `&[f64]` feature rows so the crate is
//! independent of the 60-feature layout.
//!
//! ```rust
//! use patchdb_ml::{Dataset, RandomForest, Classifier, evaluate};
//!
//! // A linearly separable toy problem.
//! let rows: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![i as f64, (100 - i) as f64])
//!     .collect();
//! let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
//! let data = Dataset::new(rows, labels).unwrap();
//! let (train, test) = data.split(0.8, 7);
//!
//! let mut rf = RandomForest::new(16, 6, 42);
//! rf.fit(&train);
//! let m = evaluate(&rf, &test);
//! assert!(m.accuracy() > 0.9);
//! ```

#![warn(missing_docs)]

mod bayes;
mod boosting;
mod classifier;
mod dataset;
mod forest;
mod knn;
mod linear;
mod metrics;
mod smo;
mod tree;
mod validation;

pub use bayes::{DiscretizedBayesNet, GaussianNaiveBayes};
pub use boosting::AdaBoost;
pub use classifier::{evaluate, Classifier};
pub use dataset::{Dataset, DatasetError};
pub use forest::{ForestState, RandomForest};
pub use knn::KNearestNeighbors;
pub use linear::{LinearSvm, LogisticRegression, SgdClassifier, VotedPerceptron};
pub use metrics::{ConfusionMatrix, Metrics};
pub use smo::SmoSvm;
pub use tree::{DecisionTree, NodeState, SplitCriterion, TreeState};
pub use validation::{cross_validate, permutation_importance, summarize_folds};

/// Builds the paper's ten-classifier ensemble for uncertainty-based
/// labeling (Table III), seeded deterministically.
pub fn uncertainty_ensemble(seed: u64) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(RandomForest::new(24, 10, seed)),
        Box::new(LinearSvm::new(seed ^ 1)),
        Box::new(LogisticRegression::new(seed ^ 2)),
        Box::new(SgdClassifier::new(seed ^ 3)),
        Box::new(SmoSvm::new(seed ^ 4)),
        Box::new(GaussianNaiveBayes::new()),
        Box::new(DiscretizedBayesNet::new(8)),
        Box::new(DecisionTree::new(SplitCriterion::Entropy, 12)), // J48-style
        Box::new(tree::RepTree::new(12, seed ^ 5)),
        Box::new(VotedPerceptron::new(seed ^ 6)),
    ]
}

pub use tree::RepTree;
