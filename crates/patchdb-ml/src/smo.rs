//! Simplified SMO (sequential minimal optimization) linear SVM, after
//! Platt (1998) — the "SMO classifier" member of the paper's
//! uncertainty ensemble.
//!
//! This is the simplified-SMO variant (random second multiplier, bounded
//! passes) on a linear kernel. For separable-ish data it converges to the
//! same decision boundary as the dual SVM; for our ensemble use only the
//! decision function matters.

use patchdb_rt::rng::Xoshiro256pp;

use crate::classifier::{Classifier, Standardizer};
use crate::dataset::Dataset;

/// Linear-kernel SMO SVM.
#[derive(Debug, Clone)]
pub struct SmoSvm {
    c: f64,
    tol: f64,
    max_passes: usize,
    seed: u64,
    scaler: Standardizer,
    weights: Vec<f64>,
    bias: f64,
    trained: bool,
}

impl SmoSvm {
    /// Creates an untrained model (C = 1.0, tolerance 1e-3, 5 passes).
    pub fn new(seed: u64) -> Self {
        SmoSvm {
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            seed,
            scaler: Standardizer::default(),
            weights: Vec::new(),
            bias: 0.0,
            trained: false,
        }
    }

    fn decision(&self, z: &[f64]) -> f64 {
        self.weights.iter().zip(z).map(|(a, b)| a * b).sum::<f64>() + self.bias
    }
}

impl Classifier for SmoSvm {
    fn fit(&mut self, data: &Dataset) {
        self.scaler = Standardizer::fit(data);
        let x: Vec<Vec<f64>> = data.rows().iter().map(|r| self.scaler.transform(r)).collect();
        let y: Vec<f64> = data.labels().iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let n = x.len();
        if n == 0 {
            return;
        }
        // Cap the working set: SMO is O(n²)-ish; subsample large sets.
        let cap = 2000usize;
        let idxs: Vec<usize> = if n > cap {
            let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ 0x5151);
            (0..cap).map(|_| rng.gen_range(0..n)).collect()
        } else {
            (0..n).collect()
        };
        let xs: Vec<&Vec<f64>> = idxs.iter().map(|&i| &x[i]).collect();
        let ys: Vec<f64> = idxs.iter().map(|&i| y[i]).collect();
        let m = xs.len();

        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(p, q)| p * q).sum::<f64>();
        let mut alpha = vec![0.0f64; m];
        let mut b = 0.0f64;
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);

        let f = |alpha: &[f64], b: f64, xi: &[f64], xs: &[&Vec<f64>], ys: &[f64]| -> f64 {
            let mut s = b;
            for j in 0..xs.len() {
                if alpha[j] != 0.0 {
                    s += alpha[j] * ys[j] * dot(xs[j], xi);
                }
            }
            s
        };

        let mut passes = 0usize;
        // Hard bound on total sweeps: simplified SMO resets its clean-pass
        // counter on every multiplier change, which can otherwise sweep
        // for a very long time on non-separable data.
        let max_sweeps = 40usize;
        let mut sweeps = 0usize;
        while passes < self.max_passes && sweeps < max_sweeps {
            sweeps += 1;
            let mut changed = 0usize;
            for i in 0..m {
                let ei = f(&alpha, b, xs[i], &xs, &ys) - ys[i];
                if (ys[i] * ei < -self.tol && alpha[i] < self.c)
                    || (ys[i] * ei > self.tol && alpha[i] > 0.0)
                {
                    let mut j = rng.gen_range(0..m - 1);
                    if j >= i {
                        j += 1;
                    }
                    let ej = f(&alpha, b, xs[j], &xs, &ys) - ys[j];
                    let (ai_old, aj_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if (ys[i] - ys[j]).abs() > f64::EPSILON {
                        ((aj_old - ai_old).max(0.0), (self.c + aj_old - ai_old).min(self.c))
                    } else {
                        ((ai_old + aj_old - self.c).max(0.0), (ai_old + aj_old).min(self.c))
                    };
                    if lo >= hi {
                        continue;
                    }
                    let eta = 2.0 * dot(xs[i], xs[j]) - dot(xs[i], xs[i]) - dot(xs[j], xs[j]);
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - ys[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-5 {
                        continue;
                    }
                    let ai = ai_old + ys[i] * ys[j] * (aj_old - aj);
                    alpha[i] = ai;
                    alpha[j] = aj;
                    let b1 = b - ei
                        - ys[i] * (ai - ai_old) * dot(xs[i], xs[i])
                        - ys[j] * (aj - aj_old) * dot(xs[i], xs[j]);
                    let b2 = b - ej
                        - ys[i] * (ai - ai_old) * dot(xs[i], xs[j])
                        - ys[j] * (aj - aj_old) * dot(xs[j], xs[j]);
                    b = if ai > 0.0 && ai < self.c {
                        b1
                    } else if aj > 0.0 && aj < self.c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Collapse to primal weights (linear kernel).
        let width = xs.first().map_or(0, |r| r.len());
        let mut w = vec![0.0; width];
        for j in 0..m {
            if alpha[j] != 0.0 {
                for (wk, v) in w.iter_mut().zip(xs[j].iter()) {
                    *wk += alpha[j] * ys[j] * v;
                }
            }
        }
        self.weights = w;
        self.bias = b;
        self.trained = true;
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if !self.trained {
            return 0.5;
        }
        let z = self.scaler.transform(x);
        let d = self.decision(&z);
        // Squash the margin; scale keeps mid-range gradations.
        1.0 / (1.0 + (-2.0 * d).exp())
    }

    fn name(&self) -> &'static str {
        "smo-svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    #[test]
    fn separates_simple_margin() {
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let v = i as f64 / 10.0;
                vec![v, 12.0 - v]
            })
            .collect();
        let y: Vec<bool> = (0..120).map(|i| i >= 60).collect();
        let d = Dataset::new(x, y).unwrap();
        let (train, test) = d.split(0.8, 2);
        let mut m = SmoSvm::new(1);
        m.fit(&train);
        let acc = evaluate(&m, &test).accuracy();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..60).map(|i| i > 30).collect();
        let d = Dataset::new(x, y).unwrap();
        let mut a = SmoSvm::new(9);
        let mut b = SmoSvm::new(9);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.predict_proba(&[15.0]), b.predict_proba(&[15.0]));
    }

    #[test]
    fn untrained_predicts_half() {
        assert_eq!(SmoSvm::new(0).predict_proba(&[1.0]), 0.5);
    }
}
