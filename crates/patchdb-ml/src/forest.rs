//! Random forest: bagged Gini trees with √d feature subsampling — the
//! model behind the pseudo-labeling baseline (Table III) and the
//! statistical-feature classifier of Table VI.

use patchdb_rt::rng::Xoshiro256pp;

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use crate::tree::{DecisionTree, GrowParams, SplitCriterion, TreeState};

/// Serializable image of a fitted [`RandomForest`]: the training
/// hyper-parameters plus every fitted tree's [`TreeState`]. External
/// codecs (the serve snapshot format) persist this instead of the
/// private fields; `from_state(export_state())` reproduces identical
/// predictions on every input.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestState {
    /// Configured tree count (what a re-`fit` would grow).
    pub n_trees: usize,
    /// Per-tree depth bound.
    pub max_depth: usize,
    /// Forest seed (per-tree seeds derive from it).
    pub seed: u64,
    /// Every fitted tree, in training order.
    pub trees: Vec<TreeState>,
}

/// A random forest over binary-labeled feature rows.
///
/// Training parallelizes across trees with scoped threads when
/// the forest is large enough to pay for it.
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an untrained forest of `n_trees` depth-bounded trees.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest { n_trees: n_trees.max(1), max_depth, seed, trees: Vec::new() }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Exports the fitted forest as a [`ForestState`].
    pub fn export_state(&self) -> ForestState {
        ForestState {
            n_trees: self.n_trees,
            max_depth: self.max_depth,
            seed: self.seed,
            trees: self.trees.iter().map(DecisionTree::export_state).collect(),
        }
    }

    /// Reconstructs a forest from an exported state; every tree's arena
    /// is validated (see [`DecisionTree::from_state`]).
    pub fn from_state(state: ForestState) -> Result<Self, String> {
        let trees = state
            .trees
            .into_iter()
            .enumerate()
            .map(|(i, t)| DecisionTree::from_state(t).map_err(|e| format!("tree {i}: {e}")))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RandomForest {
            n_trees: state.n_trees.max(1),
            max_depth: state.max_depth,
            seed: state.seed,
            trees,
        })
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        let _span = patchdb_rt::obs::span("ml.forest.fit");
        patchdb_rt::obs::counter_add("ml.forest.trees", self.n_trees as u64);
        let mtry = ((data.width() as f64).sqrt().ceil() as usize).max(1);
        let params = GrowParams {
            criterion: SplitCriterion::Gini,
            max_depth: self.max_depth,
            min_samples_split: 2,
            mtry: Some(mtry),
        };

        let seeds: Vec<u64> = {
            let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
            (0..self.n_trees).map(|_| rng.gen()).collect()
        };

        let fit_one = |tree_seed: u64| -> DecisionTree {
            let mut rng = Xoshiro256pp::seed_from_u64(tree_seed);
            let sample = data.bootstrap(data.len(), &mut rng);
            let mut tree = DecisionTree::new(SplitCriterion::Gini, self.max_depth);
            tree.fit_params(&sample, params, &mut rng);
            tree
        };

        let threads = patchdb_rt::par::configured_threads(8);
        if self.n_trees >= 8 && data.len() >= 512 && threads > 1 {
            // Worker-thread spans would land as disconnected roots, so the
            // parallel path reports at fit granularity only.
            self.trees = patchdb_rt::par::map_chunked(&seeds, threads, |&s| fit_one(s));
        } else {
            self.trees = seeds
                .into_iter()
                .map(|s| {
                    let _t = patchdb_rt::obs::span("ml.forest.tree");
                    fit_one(s)
                })
                .collect();
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(x)).sum();
        sum / self.trees.len() as f64
    }

    /// Fans batch inference out across rows with `rt::par` when the batch
    /// is large enough to pay for the spawns. Per-row scoring is a pure
    /// function of the fitted trees, so the parallel path returns exactly
    /// the serial result in the same order.
    fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let threads = patchdb_rt::par::configured_threads(8);
        if threads > 1 && rows.len() >= 64 {
            patchdb_rt::par::map_chunked(rows, threads, |r| self.predict_proba(r))
        } else {
            rows.iter().map(|r| self.predict_proba(r)).collect()
        }
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    fn two_moons(n: usize) -> Dataset {
        // Deterministic pseudo-random interleaved clusters.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f64) / n as f64 * std::f64::consts::PI;
            let noise = ((i * 2654435761) % 97) as f64 / 970.0;
            if i % 2 == 0 {
                x.push(vec![t.cos() + noise, t.sin() + noise]);
                y.push(false);
            } else {
                x.push(vec![1.0 - t.cos() + noise, 0.5 - t.sin() + noise]);
                y.push(true);
            }
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn beats_90_percent_on_moons() {
        let d = two_moons(600);
        let (train, test) = d.split(0.8, 3);
        let mut rf = RandomForest::new(24, 8, 11);
        rf.fit(&train);
        let m = evaluate(&rf, &test);
        assert!(m.accuracy() > 0.9, "accuracy {}", m.accuracy());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = two_moons(200);
        let mut a = RandomForest::new(8, 6, 5);
        let mut b = RandomForest::new(8, 6, 5);
        a.fit(&d);
        b.fit(&d);
        for i in 0..d.len() {
            let (x, _) = d.example(i);
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // 600 rows × 16 trees triggers the threaded path; 4 trees the serial
        // one. Same per-tree seeds → same model regardless of path.
        let d = two_moons(600);
        let mut big = RandomForest::new(16, 6, 5);
        big.fit(&d);
        assert_eq!(big.tree_count(), 16);
        let (x, _) = d.example(0);
        let p = big.predict_proba(x);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn batch_predict_matches_per_row_on_both_paths() {
        let d = two_moons(300);
        let mut rf = RandomForest::new(8, 6, 21);
        rf.fit(&d);
        let rows: Vec<Vec<f64>> = d.rows().to_vec();
        // 300 rows crosses the fan-out threshold; 8 rows stays serial.
        let batched = rf.predict_proba_batch(&rows);
        assert_eq!(batched.len(), rows.len());
        for (row, &p) in rows.iter().zip(&batched) {
            assert_eq!(p, rf.predict_proba(row));
        }
        let small = rf.predict_proba_batch(&rows[..8]);
        assert_eq!(small, batched[..8]);
    }

    #[test]
    fn probabilities_average_trees() {
        let d = two_moons(100);
        let mut rf = RandomForest::new(4, 4, 9);
        rf.fit(&d);
        for i in 0..20 {
            let (x, _) = d.example(i);
            let p = rf.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
