//! Linear models: logistic regression, an SGD log-loss classifier, a
//! Pegasos-style linear SVM, and the voted perceptron — four of the ten
//! classifiers in the paper's uncertainty ensemble.

use patchdb_rt::obs;
use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

use crate::classifier::{Classifier, Standardizer};
use crate::dataset::Dataset;

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

fn dot(w: &[f64], x: &[f64]) -> f64 {
    w.iter().zip(x).map(|(a, b)| a * b).sum()
}

/// Shared state of the gradient-trained linear models.
#[derive(Debug, Clone, Default)]
struct LinearState {
    weights: Vec<f64>,
    bias: f64,
    scaler: Standardizer,
}

impl LinearState {
    fn margin(&self, x: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        let z = self.scaler.transform(x);
        dot(&self.weights, &z) + self.bias
    }
}

/// Full-batch logistic regression trained with gradient descent and L2
/// regularization on z-scored features.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    state: LinearState,
    epochs: usize,
    lr: f64,
    l2: f64,
    seed: u64,
}

impl LogisticRegression {
    /// Creates an untrained model with library defaults (200 epochs,
    /// learning rate 0.1, weak L2).
    pub fn new(seed: u64) -> Self {
        LogisticRegression {
            state: LinearState::default(),
            epochs: 200,
            lr: 0.1,
            l2: 1e-4,
            seed,
        }
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        let _span = obs::span("ml.logreg.fit");
        obs::counter_add("ml.epochs", self.epochs as u64);
        let _ = self.seed; // deterministic full-batch; seed kept for API parity
        self.state.scaler = Standardizer::fit(data);
        let rows: Vec<Vec<f64>> =
            data.rows().iter().map(|r| self.state.scaler.transform(r)).collect();
        let n = rows.len().max(1) as f64;
        let w = data.width();
        self.state.weights = vec![0.0; w];
        self.state.bias = 0.0;

        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0; w];
            let mut grad_b = 0.0;
            for (row, &label) in rows.iter().zip(data.labels()) {
                let p = sigmoid(dot(&self.state.weights, row) + self.state.bias);
                let err = p - f64::from(label);
                for (g, v) in grad_w.iter_mut().zip(row) {
                    *g += err * v;
                }
                grad_b += err;
            }
            for (wi, g) in self.state.weights.iter_mut().zip(&grad_w) {
                *wi -= self.lr * (g / n + self.l2 * *wi);
            }
            self.state.bias -= self.lr * grad_b / n;
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.state.margin(x))
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

/// Stochastic-gradient log-loss classifier (scikit's `SGDClassifier`
/// flavor): per-example updates, decaying step size.
#[derive(Debug, Clone)]
pub struct SgdClassifier {
    state: LinearState,
    epochs: usize,
    lr0: f64,
    seed: u64,
}

impl SgdClassifier {
    /// Creates an untrained model (30 epochs, step 0.5/(1+t·1e-3)).
    pub fn new(seed: u64) -> Self {
        SgdClassifier { state: LinearState::default(), epochs: 30, lr0: 0.5, seed }
    }
}

impl Classifier for SgdClassifier {
    fn fit(&mut self, data: &Dataset) {
        let _span = obs::span("ml.sgd.fit");
        obs::counter_add("ml.epochs", self.epochs as u64);
        self.state.scaler = Standardizer::fit(data);
        let rows: Vec<Vec<f64>> =
            data.rows().iter().map(|r| self.state.scaler.transform(r)).collect();
        let w = data.width();
        self.state.weights = vec![0.0; w];
        self.state.bias = 0.0;
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut t = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let lr = self.lr0 / (1.0 + 1e-3 * t as f64);
                let p = sigmoid(dot(&self.state.weights, &rows[i]) + self.state.bias);
                let err = p - f64::from(data.labels()[i]);
                for (wi, v) in self.state.weights.iter_mut().zip(&rows[i]) {
                    *wi -= lr * err * v;
                }
                self.state.bias -= lr * err;
            }
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.state.margin(x))
    }

    fn name(&self) -> &'static str {
        "sgd-classifier"
    }
}

/// Pegasos-style linear SVM (hinge loss, λ-regularized SGD). Probabilities
/// are a sigmoid squash of the margin — adequate for thresholding and
/// consensus voting.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    state: LinearState,
    epochs: usize,
    lambda: f64,
    seed: u64,
}

impl LinearSvm {
    /// Creates an untrained SVM (30 epochs, λ = 1e-4).
    pub fn new(seed: u64) -> Self {
        LinearSvm { state: LinearState::default(), epochs: 30, lambda: 1e-4, seed }
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) {
        let _span = obs::span("ml.svm.fit");
        obs::counter_add("ml.epochs", self.epochs as u64);
        self.state.scaler = Standardizer::fit(data);
        let rows: Vec<Vec<f64>> =
            data.rows().iter().map(|r| self.state.scaler.transform(r)).collect();
        let w = data.width();
        self.state.weights = vec![0.0; w];
        self.state.bias = 0.0;
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut t = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let lr = 1.0 / (self.lambda * t as f64);
                let y = if data.labels()[i] { 1.0 } else { -1.0 };
                let margin = y * (dot(&self.state.weights, &rows[i]) + self.state.bias);
                // w ← (1 − ηλ)w  [+ ηy·x when inside the margin]
                for wi in &mut self.state.weights {
                    *wi *= 1.0 - (lr * self.lambda).min(1.0);
                }
                if margin < 1.0 {
                    for (wi, v) in self.state.weights.iter_mut().zip(&rows[i]) {
                        *wi += lr * y * v;
                    }
                    self.state.bias += lr * y * 0.1; // unregularized, damped
                }
            }
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.state.margin(x))
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

/// Freund–Schapire voted perceptron: keeps every intermediate weight
/// vector with its survival count and votes them at prediction time.
#[derive(Debug, Clone)]
pub struct VotedPerceptron {
    snapshots: Vec<(Vec<f64>, f64, usize)>, // (weights, bias, votes)
    scaler: Standardizer,
    epochs: usize,
    seed: u64,
}

impl VotedPerceptron {
    /// Creates an untrained model (10 epochs).
    pub fn new(seed: u64) -> Self {
        VotedPerceptron {
            snapshots: Vec::new(),
            scaler: Standardizer::default(),
            epochs: 10,
            seed,
        }
    }
}

impl Classifier for VotedPerceptron {
    fn fit(&mut self, data: &Dataset) {
        let _span = obs::span("ml.perceptron.fit");
        obs::counter_add("ml.epochs", self.epochs as u64);
        self.scaler = Standardizer::fit(data);
        let rows: Vec<Vec<f64>> = data.rows().iter().map(|r| self.scaler.transform(r)).collect();
        let w = data.width();
        let mut weights = vec![0.0; w];
        let mut bias = 0.0;
        let mut votes = 1usize;
        self.snapshots.clear();
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..rows.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let y = if data.labels()[i] { 1.0 } else { -1.0 };
                if y * (dot(&weights, &rows[i]) + bias) <= 0.0 {
                    // Mistake: snapshot the surviving vector, then update.
                    self.snapshots.push((weights.clone(), bias, votes));
                    for (wi, v) in weights.iter_mut().zip(&rows[i]) {
                        *wi += y * v;
                    }
                    bias += y;
                    votes = 1;
                } else {
                    votes += 1;
                }
            }
        }
        self.snapshots.push((weights, bias, votes));
        // Cap memory: keep the heaviest 256 snapshots.
        if self.snapshots.len() > 256 {
            self.snapshots.sort_by_key(|(_, _, v)| std::cmp::Reverse(*v));
            self.snapshots.truncate(256);
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.snapshots.is_empty() {
            return 0.5;
        }
        let z = self.scaler.transform(x);
        let mut score = 0.0;
        let mut total = 0.0;
        for (w, b, v) in &self.snapshots {
            let sign = if dot(w, &z) + b >= 0.0 { 1.0 } else { -1.0 };
            score += (*v as f64) * sign;
            total += *v as f64;
        }
        (score / total + 1.0) / 2.0
    }

    fn name(&self) -> &'static str {
        "voted-perceptron"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    fn linearly_separable(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 20) as f64;
                let b = ((i * 7) % 20) as f64;
                vec![a, b]
            })
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] + r[1] > 19.0).collect();
        Dataset::new(x, y).unwrap()
    }

    fn check_model<C: Classifier>(mut model: C, min_acc: f64) {
        let d = linearly_separable(400);
        let (train, test) = d.split(0.8, 2);
        model.fit(&train);
        let m = evaluate(&model, &test);
        assert!(
            m.accuracy() >= min_acc,
            "{} accuracy {} < {min_acc}",
            model.name(),
            m.accuracy()
        );
    }

    #[test]
    fn logistic_regression_separates() {
        check_model(LogisticRegression::new(1), 0.93);
    }

    #[test]
    fn sgd_separates() {
        check_model(SgdClassifier::new(1), 0.93);
    }

    #[test]
    fn svm_separates() {
        check_model(LinearSvm::new(1), 0.9);
    }

    #[test]
    fn voted_perceptron_separates() {
        check_model(VotedPerceptron::new(1), 0.9);
    }

    #[test]
    fn sigmoid_is_stable() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = linearly_separable(100);
        let mut m = LogisticRegression::new(3);
        m.fit(&d);
        for i in 0..d.len() {
            let p = m.predict_proba(d.example(i).0);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn untrained_models_predict_half() {
        assert_eq!(LogisticRegression::new(0).predict_proba(&[1.0, 2.0]), 0.5);
        assert_eq!(VotedPerceptron::new(0).predict_proba(&[1.0, 2.0]), 0.5);
    }
}
