//! Decision trees: CART-style growth with Gini or entropy (J48-style)
//! splitting, plus REPTree — an entropy tree with reduced-error pruning —
//! two of the ten Weka classifiers in the paper's uncertainty baseline.

use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

use crate::classifier::Classifier;
use crate::dataset::Dataset;

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity (CART; used by the Random Forest).
    Gini,
    /// Information gain (C4.5/J48 style).
    Entropy,
}

impl SplitCriterion {
    fn impurity(self, pos: f64, total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let p = pos / total;
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let h = |q: f64| if q <= 0.0 || q >= 1.0 { 0.0 } else { -q * q.log2() };
                h(p) + h(1.0 - p)
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
        /// Training positive-fraction at this node, kept for pruning.
        prob: f64,
    },
}

/// Serializable image of one fitted tree node, mirroring the private
/// node layout so external codecs (the serve snapshot format) can
/// persist a tree without this crate dictating a byte format.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeState {
    /// Terminal node carrying the training positive-fraction.
    Leaf {
        /// Positive-class probability this leaf predicts.
        prob: f64,
    },
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index the split tests.
        feature: usize,
        /// Split threshold (`<=` goes left).
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
        /// Training positive-fraction at this node (kept for pruning).
        prob: f64,
    },
}

/// Serializable image of a fitted [`DecisionTree`]: hyper-parameters
/// plus the node arena. Round-trips exactly — `from_state(export_state())`
/// reproduces identical predictions on every input.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeState {
    /// Split-quality criterion the tree was grown with.
    pub criterion: SplitCriterion,
    /// Depth bound the tree was grown under.
    pub max_depth: usize,
    /// Arena index of the root node.
    pub root: usize,
    /// The node arena (children always precede their parent).
    pub nodes: Vec<NodeState>,
}

/// Growth hyper-parameters shared by trees and forests.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GrowParams {
    pub criterion: SplitCriterion,
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Number of candidate features per split; `None` = all.
    pub mtry: Option<usize>,
}

/// A binary decision tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    criterion: SplitCriterion,
    max_depth: usize,
    nodes: Vec<Node>,
    root: usize,
}

impl DecisionTree {
    /// Creates an untrained tree.
    pub fn new(criterion: SplitCriterion, max_depth: usize) -> Self {
        DecisionTree { criterion, max_depth, nodes: Vec::new(), root: 0 }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn fit_params(&mut self, data: &Dataset, params: GrowParams, rng: &mut Xoshiro256pp) {
        self.nodes.clear();
        let idx: Vec<usize> = (0..data.len()).collect();
        self.root = grow(&mut self.nodes, data, &idx, params, 0, rng);
    }

    /// Exports the fitted tree as a [`TreeState`].
    pub fn export_state(&self) -> TreeState {
        TreeState {
            criterion: self.criterion,
            max_depth: self.max_depth,
            root: self.root,
            nodes: self
                .nodes
                .iter()
                .map(|n| match n {
                    Node::Leaf { prob } => NodeState::Leaf { prob: *prob },
                    Node::Split { feature, threshold, left, right, prob } => NodeState::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: *left,
                        right: *right,
                        prob: *prob,
                    },
                })
                .collect(),
        }
    }

    /// Reconstructs a tree from an exported state, validating the arena
    /// shape: children must precede their parent (the invariant `grow`
    /// establishes), which also rules out cycles and dangling indices,
    /// so a corrupted state can never make `predict_proba` hang.
    pub fn from_state(state: TreeState) -> Result<Self, String> {
        if !state.nodes.is_empty() && state.root != state.nodes.len() - 1 {
            return Err(format!(
                "tree root {} is not the last of {} nodes",
                state.root,
                state.nodes.len()
            ));
        }
        let nodes: Vec<Node> = state
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match *n {
                NodeState::Leaf { prob } => Ok(Node::Leaf { prob }),
                NodeState::Split { feature, threshold, left, right, prob } => {
                    if left >= i || right >= i {
                        return Err(format!(
                            "tree node {i} points forward (left {left}, right {right})"
                        ));
                    }
                    Ok(Node::Split { feature, threshold, left, right, prob })
                }
            })
            .collect::<Result<_, String>>()?;
        Ok(DecisionTree {
            criterion: state.criterion,
            max_depth: state.max_depth,
            nodes,
            root: state.root,
        })
    }

    fn proba(&self, x: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.5;
        }
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Leaf { prob } => return *prob,
                Node::Split { feature, threshold, left, right, .. } => {
                    at = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let params = GrowParams {
            criterion: self.criterion,
            max_depth: self.max_depth,
            min_samples_split: 2,
            mtry: None,
        };
        self.fit_params(data, params, &mut rng);
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.proba(x)
    }

    fn name(&self) -> &'static str {
        match self.criterion {
            SplitCriterion::Gini => "decision-tree(gini)",
            SplitCriterion::Entropy => "J48",
        }
    }
}

/// Recursively grows a subtree over `idx`, returning its node index.
fn grow(
    nodes: &mut Vec<Node>,
    data: &Dataset,
    idx: &[usize],
    params: GrowParams,
    depth: usize,
    rng: &mut Xoshiro256pp,
) -> usize {
    let pos = idx.iter().filter(|&&i| data.labels()[i]).count();
    let prob = if idx.is_empty() { 0.5 } else { pos as f64 / idx.len() as f64 };

    let stop = depth >= params.max_depth
        || idx.len() < params.min_samples_split
        || pos == 0
        || pos == idx.len();
    if stop {
        nodes.push(Node::Leaf { prob });
        return nodes.len() - 1;
    }

    let Some((feature, threshold)) = best_split(data, idx, params, rng) else {
        nodes.push(Node::Leaf { prob });
        return nodes.len() - 1;
    };

    let (li, ri): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| data.rows()[i][feature] <= threshold);
    if li.is_empty() || ri.is_empty() {
        nodes.push(Node::Leaf { prob });
        return nodes.len() - 1;
    }
    let left = grow(nodes, data, &li, params, depth + 1, rng);
    let right = grow(nodes, data, &ri, params, depth + 1, rng);
    nodes.push(Node::Split { feature, threshold, left, right, prob });
    nodes.len() - 1
}

/// Exhaustive best split over (a sample of) features via the sorted-sweep
/// O(n log n) scan per feature.
fn best_split(
    data: &Dataset,
    idx: &[usize],
    params: GrowParams,
    rng: &mut Xoshiro256pp,
) -> Option<(usize, f64)> {
    let width = data.width();
    let mut features: Vec<usize> = (0..width).collect();
    if let Some(m) = params.mtry {
        features.shuffle(rng);
        features.truncate(m.max(1).min(width));
    }

    let total = idx.len() as f64;
    let total_pos = idx.iter().filter(|&&i| data.labels()[i]).count() as f64;
    let parent = params.criterion.impurity(total_pos, total);

    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut order: Vec<usize> = Vec::with_capacity(idx.len());

    for &f in &features {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_unstable_by(|&a, &b| {
            data.rows()[a][f].partial_cmp(&data.rows()[b][f]).expect("finite features")
        });

        let mut left_pos = 0.0;
        let mut left_n = 0.0;
        for w in 0..order.len() - 1 {
            let i = order[w];
            left_n += 1.0;
            if data.labels()[i] {
                left_pos += 1.0;
            }
            let v = data.rows()[i][f];
            let next = data.rows()[order[w + 1]][f];
            if next <= v {
                continue; // no threshold separates equal values
            }
            let right_n = total - left_n;
            let right_pos = total_pos - left_pos;
            let child = (left_n / total) * params.criterion.impurity(left_pos, left_n)
                + (right_n / total) * params.criterion.impurity(right_pos, right_n);
            // Accept any non-negative gain (zero-gain splits let the tree
            // work through XOR-like structure; max_depth bounds growth).
            let gain = parent - child;
            if gain >= 0.0 && best.map_or(true, |(g, ..)| gain > g) {
                best = Some((gain, f, (v + next) / 2.0));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

/// REPTree: entropy-grown tree with reduced-error pruning on an internal
/// hold-out set, after Weka's `REPTree`.
#[derive(Debug, Clone)]
pub struct RepTree {
    max_depth: usize,
    seed: u64,
    tree: DecisionTree,
}

impl RepTree {
    /// Creates an untrained REPTree.
    pub fn new(max_depth: usize, seed: u64) -> Self {
        RepTree { max_depth, seed, tree: DecisionTree::new(SplitCriterion::Entropy, max_depth) }
    }

    /// Node count after fitting (post-pruning and compaction).
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }
}

impl Classifier for RepTree {
    fn fit(&mut self, data: &Dataset) {
        let (grow_set, prune_set) = data.holdout(0.25, self.seed);
        let fit_on = if grow_set.is_empty() { data } else { &grow_set };
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        self.tree.fit_params(
            fit_on,
            GrowParams {
                criterion: SplitCriterion::Entropy,
                max_depth: self.max_depth,
                min_samples_split: 2,
                mtry: None,
            },
            &mut rng,
        );
        if !prune_set.is_empty() {
            prune(&mut self.tree, &prune_set);
            compact(&mut self.tree);
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.tree.proba(x)
    }

    fn name(&self) -> &'static str {
        "REPTree"
    }
}

/// Reduced-error pruning: post-order, replace a split by a leaf carrying
/// its training probability whenever that does not increase hold-out error.
fn prune(tree: &mut DecisionTree, validation: &Dataset) {
    if tree.nodes.is_empty() {
        return;
    }
    // Route each validation example to the nodes it passes through.
    // Simpler: for each node, compute the set of validation rows reaching it
    // by replaying from the root each time a node is considered. The tree is
    // small (depth-bounded), so this stays cheap.
    let order = postorder(tree);
    for at in order {
        let Node::Split { prob, .. } = tree.nodes[at] else { continue };
        let reach = reaching(tree, validation, at);
        if reach.is_empty() {
            // No evidence either way: collapse (Occam).
            tree.nodes[at] = Node::Leaf { prob };
            continue;
        }
        let mut subtree_err = 0usize;
        let mut leaf_err = 0usize;
        for &i in &reach {
            let (x, y) = validation.example(i);
            if (proba_from(tree, at, x) >= 0.5) != y {
                subtree_err += 1;
            }
            if (prob >= 0.5) != y {
                leaf_err += 1;
            }
        }
        if leaf_err <= subtree_err {
            tree.nodes[at] = Node::Leaf { prob };
        }
    }
}

/// Drops arena nodes orphaned by pruning, renumbering the survivors.
fn compact(tree: &mut DecisionTree) {
    if tree.nodes.is_empty() {
        return;
    }
    let mut keep = vec![false; tree.nodes.len()];
    let mut stack = vec![tree.root];
    while let Some(at) = stack.pop() {
        if keep[at] {
            continue;
        }
        keep[at] = true;
        if let Node::Split { left, right, .. } = &tree.nodes[at] {
            stack.push(*left);
            stack.push(*right);
        }
    }
    let mut remap = vec![usize::MAX; tree.nodes.len()];
    let mut next = 0usize;
    for (i, k) in keep.iter().enumerate() {
        if *k {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(&mut tree.nodes);
    for (i, node) in old.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        tree.nodes.push(match node {
            Node::Leaf { prob } => Node::Leaf { prob },
            Node::Split { feature, threshold, left, right, prob } => Node::Split {
                feature,
                threshold,
                left: remap[left],
                right: remap[right],
                prob,
            },
        });
    }
    tree.root = remap[tree.root];
}

fn postorder(tree: &DecisionTree) -> Vec<usize> {
    // Node indices are assigned children-first in `grow`, so ascending
    // order is already a valid post-order.
    (0..tree.nodes.len()).collect()
}

fn reaching(tree: &DecisionTree, data: &Dataset, target: usize) -> Vec<usize> {
    let mut out = Vec::new();
    'rows: for i in 0..data.len() {
        let (x, _) = data.example(i);
        let mut at = tree.root;
        loop {
            if at == target {
                out.push(i);
                continue 'rows;
            }
            match &tree.nodes[at] {
                Node::Leaf { .. } => continue 'rows,
                Node::Split { feature, threshold, left, right, .. } => {
                    at = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
    out
}

fn proba_from(tree: &DecisionTree, start: usize, x: &[f64]) -> f64 {
    let mut at = start;
    loop {
        match &tree.nodes[at] {
            Node::Leaf { prob } => return *prob,
            Node::Split { feature, threshold, left, right, .. } => {
                at = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    *left
                } else {
                    *right
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    fn interval(n: usize) -> Dataset {
        // Nonlinear concept: positive iff x ∈ [3, 7) — needs two splits.
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64 * 9.7) % 10.0]).collect();
        let y: Vec<bool> = x.iter().map(|r| (3.0..7.0).contains(&r[0])).collect();
        Dataset::new(x, y).unwrap()
    }

    fn separable(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, -(i as f64)]).collect();
        let y: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn learns_interval_with_depth_two() {
        let d = interval(400);
        let mut t = DecisionTree::new(SplitCriterion::Gini, 2);
        t.fit(&d);
        let m = evaluate(&t, &d);
        assert!(m.accuracy() > 0.99, "accuracy {}", m.accuracy());
    }

    #[test]
    fn entropy_matches_gini_on_separable() {
        let d = separable(100);
        for crit in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            let mut t = DecisionTree::new(crit, 3);
            t.fit(&d);
            assert_eq!(evaluate(&t, &d).accuracy(), 1.0);
        }
    }

    #[test]
    fn depth_zero_is_majority_vote() {
        let d = separable(10);
        let mut t = DecisionTree::new(SplitCriterion::Gini, 0);
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        // 5 pos / 10 → prob 0.5 → predicts positive everywhere.
        assert!(t.predict(&[0.0, 0.0]));
    }

    #[test]
    fn pure_node_stops_early() {
        let d = Dataset::new(vec![vec![1.0]; 20], vec![true; 20]).unwrap();
        let mut t = DecisionTree::new(SplitCriterion::Gini, 8);
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba(&[1.0]), 1.0);
    }

    #[test]
    fn reptree_learns_and_prunes() {
        let d = separable(300);
        let mut t = RepTree::new(12, 5);
        t.fit(&d);
        let m = evaluate(&t, &d);
        assert!(m.accuracy() > 0.95, "accuracy {}", m.accuracy());
    }

    #[test]
    fn reptree_prunes_noise_smaller_than_unpruned() {
        // Random labels: the unpruned tree overfits; REP pruning should
        // collapse most of it.
        let x: Vec<Vec<f64>> = (0..300).map(|i| vec![(i as f64 * 7.3) % 10.0]).collect();
        let y: Vec<bool> = (0..300).map(|i| (i * 2654435761usize) % 7 < 3).collect();
        let d = Dataset::new(x, y).unwrap();

        let mut plain = DecisionTree::new(SplitCriterion::Entropy, 12);
        plain.fit(&d);
        let mut rep = RepTree::new(12, 5);
        rep.fit(&d);
        let leaves = |t: &DecisionTree| {
            t.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
        };
        assert!(
            leaves(&rep.tree) < leaves(&plain),
            "pruned {} vs plain {}",
            leaves(&rep.tree),
            leaves(&plain)
        );
    }

    #[test]
    fn unfitted_tree_predicts_half() {
        let t = DecisionTree::new(SplitCriterion::Gini, 3);
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
    }
}
