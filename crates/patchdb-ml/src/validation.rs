//! Model-validation utilities: k-fold cross-validation and permutation
//! feature importance — the analysis tooling used to sanity-check the
//! Table VI models and to ask *which* Table I features carry the
//! security-patch signal.

use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

use crate::classifier::{evaluate, Classifier};
use crate::dataset::Dataset;
use crate::metrics::Metrics;

/// Runs stratification-free k-fold cross-validation, returning per-fold
/// metrics. `make_model` builds a fresh untrained model per fold so state
/// never leaks between folds.
///
/// # Panics
///
/// Panics when `k < 2` or the dataset has fewer than `k` examples.
pub fn cross_validate<C, F>(data: &Dataset, k: usize, seed: u64, mut make_model: F) -> Vec<Metrics>
where
    C: Classifier,
    F: FnMut() -> C,
{
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(data.len() >= k, "dataset smaller than fold count");

    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let gather = |idx: &[usize]| -> Dataset {
        let rows: Vec<Vec<f64>> = idx.iter().map(|&i| data.example(i).0.to_vec()).collect();
        let labels: Vec<bool> = idx.iter().map(|&i| data.example(i).1).collect();
        Dataset::new(rows, labels).expect("subset of valid dataset")
    };

    let fold_size = data.len() / k;
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * fold_size;
        let hi = if f + 1 == k { data.len() } else { lo + fold_size };
        let test_idx: Vec<usize> = order[lo..hi].to_vec();
        let train_idx: Vec<usize> =
            order[..lo].iter().chain(&order[hi..]).copied().collect();
        let mut model = make_model();
        model.fit(&gather(&train_idx));
        out.push(evaluate(&model, &gather(&test_idx)));
    }
    out
}

/// Mean and standard deviation of a metric across folds.
pub fn summarize_folds<F: Fn(&Metrics) -> f64>(folds: &[Metrics], metric: F) -> (f64, f64) {
    if folds.is_empty() {
        return (0.0, 0.0);
    }
    let vals: Vec<f64> = folds.iter().map(metric).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
    (mean, var.sqrt())
}

/// Permutation importance: for each feature column, shuffle it within the
/// evaluation set and measure the accuracy drop. Returns one value per
/// column (larger = more important); near-zero/negative values mean the
/// model does not rely on the column.
pub fn permutation_importance<C: Classifier + ?Sized>(
    model: &C,
    data: &Dataset,
    seed: u64,
) -> Vec<f64> {
    let baseline = evaluate(model, data).accuracy();
    let width = data.width();
    let mut out = Vec::with_capacity(width);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);

    for col in 0..width {
        let mut shuffled: Vec<f64> = data.rows().iter().map(|r| r[col]).collect();
        shuffled.shuffle(&mut rng);
        let mut correct = 0usize;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let mut z = x.to_vec();
            z[col] = shuffled[i];
            if model.predict(&z) == y {
                correct += 1;
            }
        }
        out.push(baseline - correct as f64 / data.len().max(1) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForest;

    fn separable(n: usize) -> Dataset {
        // Column 0 carries the label; column 1 is pure noise.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 2654435761) % 100) as f64])
            .collect();
        let y: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn cross_validation_covers_every_example_once() {
        let d = separable(100);
        let folds = cross_validate(&d, 5, 3, || RandomForest::new(8, 6, 1));
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(|m| m.confusion.total()).sum();
        assert_eq!(total, 100);
        let (mean, sd) = summarize_folds(&folds, Metrics::accuracy);
        assert!(mean > 0.9, "mean accuracy {mean}");
        assert!(sd < 0.2);
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn rejects_k1() {
        let d = separable(10);
        cross_validate(&d, 1, 0, || RandomForest::new(2, 2, 0));
    }

    #[test]
    fn importance_finds_the_signal_column() {
        let d = separable(200);
        let mut rf = RandomForest::new(16, 8, 2);
        rf.fit(&d);
        let imp = permutation_importance(&rf, &d, 9);
        assert_eq!(imp.len(), 2);
        assert!(
            imp[0] > imp[1] + 0.1,
            "signal column {} vs noise column {}",
            imp[0],
            imp[1]
        );
        assert!(imp[1].abs() < 0.1, "noise column should not matter: {}", imp[1]);
    }

    #[test]
    fn fold_summary_handles_empty() {
        assert_eq!(summarize_folds(&[], Metrics::accuracy), (0.0, 0.0));
    }
}
