//! Confusion-matrix metrics: the precision/recall numbers every PatchDB
//! table reports.

use std::fmt;


/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Positives predicted positive.
    pub tp: usize,
    /// Negatives predicted positive.
    pub fp: usize,
    /// Positives predicted negative.
    pub fn_: usize,
    /// Negatives predicted negative.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Records one (prediction, truth) pair.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total examples recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Metrics derived from a confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// The underlying confusion matrix.
    pub confusion: ConfusionMatrix,
}

impl Metrics {
    /// Wraps a confusion matrix.
    pub fn new(confusion: ConfusionMatrix) -> Self {
        Metrics { confusion }
    }

    /// `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let d = self.confusion.tp + self.confusion.fp;
        if d == 0 {
            0.0
        } else {
            self.confusion.tp as f64 / d as f64
        }
    }

    /// `tp / (tp + fn)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        let d = self.confusion.tp + self.confusion.fn_;
        if d == 0 {
            0.0
        } else {
            self.confusion.tp as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let t = self.confusion.total();
        if t == 0 {
            0.0
        } else {
            (self.confusion.tp + self.confusion.tn) as f64 / t as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision {:.1}%, recall {:.1}%, F1 {:.1}%, accuracy {:.1}%",
            100.0 * self.precision(),
            100.0 * self.recall(),
            100.0 * self.f1(),
            100.0 * self.accuracy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let m = Metrics::new(ConfusionMatrix { tp: 8, fp: 2, fn_: 4, tn: 6 });
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.7).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = Metrics::new(ConfusionMatrix::default());
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn record_routes_correctly() {
        let mut c = ConfusionMatrix::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn display_is_readable() {
        let m = Metrics::new(ConfusionMatrix { tp: 1, fp: 0, fn_: 0, tn: 1 });
        let s = m.to_string();
        assert!(s.contains("precision 100.0%"));
    }
}
