//! AdaBoost over depth-limited decision stumps — an additional ensemble
//! family for ablations against the Random Forest (not part of the
//! paper's ten-classifier set, but a standard point of comparison for
//! feature-space patch classification).

use patchdb_rt::rng::Xoshiro256pp;

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use crate::tree::{DecisionTree, SplitCriterion};

/// Discrete AdaBoost with shallow-tree weak learners.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    rounds: usize,
    stump_depth: usize,
    seed: u64,
    learners: Vec<(DecisionTree, f64)>, // (stump, alpha)
}

impl AdaBoost {
    /// Creates an untrained booster with `rounds` weak learners of depth
    /// `stump_depth` (1–2 are classic choices).
    pub fn new(rounds: usize, stump_depth: usize, seed: u64) -> Self {
        AdaBoost { rounds: rounds.max(1), stump_depth: stump_depth.max(1), seed, learners: Vec::new() }
    }

    /// Number of fitted weak learners (may stop early on a perfect fit).
    pub fn learner_count(&self) -> usize {
        self.learners.len()
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, data: &Dataset) {
        self.learners.clear();
        let n = data.len();
        if n == 0 {
            return;
        }
        let mut weights = vec![1.0 / n as f64; n];
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);

        for _ in 0..self.rounds {
            // Weak learners train on a weighted resample — the classic
            // resampling formulation, which reuses the unweighted trees.
            let resample = weighted_resample(data, &weights, &mut rng);
            let mut stump = DecisionTree::new(SplitCriterion::Gini, self.stump_depth);
            stump.fit(&resample);

            // Weighted training error of the stump on the original data.
            let mut err = 0.0;
            let preds: Vec<bool> =
                (0..n).map(|i| stump.predict(data.example(i).0)).collect();
            for i in 0..n {
                if preds[i] != data.labels()[i] {
                    err += weights[i];
                }
            }
            err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 {
                // Weak learner no better than chance: stop boosting.
                if self.learners.is_empty() {
                    self.learners.push((stump, 1.0));
                }
                break;
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();

            // Re-weight examples and renormalize.
            for i in 0..n {
                let agree = if preds[i] == data.labels()[i] { 1.0 } else { -1.0 };
                weights[i] *= (-alpha * agree).exp();
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            self.learners.push((stump, alpha));
            if err < 1e-9 {
                break; // perfect fit
            }
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.learners.is_empty() {
            return 0.5;
        }
        let mut score = 0.0;
        let mut total = 0.0;
        for (stump, alpha) in &self.learners {
            let vote = if stump.predict(x) { 1.0 } else { -1.0 };
            score += alpha * vote;
            total += alpha;
        }
        // Squash the margin into [0, 1].
        (score / total + 1.0) / 2.0
    }

    fn name(&self) -> &'static str {
        "adaboost"
    }
}

fn weighted_resample(data: &Dataset, weights: &[f64], rng: &mut Xoshiro256pp) -> Dataset {
    // Inverse-CDF sampling over the weight distribution.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc.max(1e-12);
    let mut rows = Vec::with_capacity(data.len());
    let mut labels = Vec::with_capacity(data.len());
    for _ in 0..data.len() {
        let t = rng.gen_range(0.0..total);
        let idx = cdf.partition_point(|c| *c < t).min(data.len() - 1);
        let (x, y) = data.example(idx);
        rows.push(x.to_vec());
        labels.push(y);
    }
    Dataset::new(rows, labels).expect("resample of a valid dataset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    fn interval(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64 * 7.3) % 10.0]).collect();
        let y: Vec<bool> = x.iter().map(|r| (2.0..6.0).contains(&r[0])).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn boosting_beats_single_stump() {
        let d = interval(400);
        let mut stump = DecisionTree::new(SplitCriterion::Gini, 1);
        stump.fit(&d);
        let stump_acc = evaluate(&stump, &d).accuracy();

        let mut boost = AdaBoost::new(20, 1, 3);
        boost.fit(&d);
        let boost_acc = evaluate(&boost, &d).accuracy();
        assert!(
            boost_acc > stump_acc + 0.05,
            "boost {boost_acc} vs stump {stump_acc}"
        );
        assert!(boost_acc > 0.95, "boost accuracy {boost_acc}");
    }

    #[test]
    fn deterministic() {
        let d = interval(100);
        let mut a = AdaBoost::new(10, 1, 7);
        let mut b = AdaBoost::new(10, 1, 7);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.predict_proba(&[3.0]), b.predict_proba(&[3.0]));
    }

    #[test]
    fn perfect_separation_stops_early() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..50).map(|i| i >= 25).collect();
        let d = Dataset::new(x, y).unwrap();
        let mut boost = AdaBoost::new(50, 1, 1);
        boost.fit(&d);
        assert!(boost.learner_count() < 50);
        assert_eq!(evaluate(&boost, &d).accuracy(), 1.0);
    }

    #[test]
    fn untrained_predicts_half() {
        assert_eq!(AdaBoost::new(5, 1, 0).predict_proba(&[0.0]), 0.5);
    }
}
