//! The object-safe classifier interface shared by all ten models.

use crate::dataset::Dataset;
use crate::metrics::{ConfusionMatrix, Metrics};

/// A trainable binary classifier producing positive-class probabilities.
///
/// All implementations are deterministic given their construction seed, so
/// every experiment in the benchmark harness is reproducible.
pub trait Classifier: Send {
    /// Fits the model to `data`, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);

    /// Estimated probability that `x` belongs to the positive class.
    /// Implementations must return a value in `[0, 1]`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Positive-class probabilities for a batch of rows, in row order.
    ///
    /// The default is a serial map over [`Classifier::predict_proba`];
    /// models whose per-row inference is expensive enough to amortize a
    /// fan-out (the forest) override it. Implementations must return
    /// exactly `rows.len()` values and be row-order deterministic, so a
    /// batch scored through any override equals the rows scored one by
    /// one — the batching server relies on this to keep responses
    /// independent of how requests happened to be batched together.
    fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// Evaluates a fitted classifier on a dataset.
pub fn evaluate<C: Classifier + ?Sized>(model: &C, data: &Dataset) -> Metrics {
    let mut cm = ConfusionMatrix::default();
    for i in 0..data.len() {
        let (x, y) = data.example(i);
        cm.record(model.predict(x), y);
    }
    Metrics::new(cm)
}

/// Z-score standardizer fitted on training data, shared by the linear
/// models (whose gradients otherwise blow up on count-scaled features).
#[derive(Debug, Clone, Default)]
pub(crate) struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    pub(crate) fn fit(data: &Dataset) -> Self {
        let (n, w) = (data.len().max(1), data.width());
        let mut mean = vec![0.0; w];
        for row in data.rows() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; w];
        for row in data.rows() {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .iter()
            .map(|s| {
                let sd = (s / n as f64).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    pub(crate) fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(bool);
    impl Classifier for Always {
        fn fit(&mut self, _d: &Dataset) {}
        fn predict_proba(&self, _x: &[f64]) -> f64 {
            if self.0 {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "always"
        }
    }

    #[test]
    fn evaluate_counts_correctly() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, false]).unwrap();
        let m = evaluate(&Always(true), &d);
        assert_eq!(m.confusion.tp, 1);
        assert_eq!(m.confusion.fp, 1);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let d = Dataset::new(
            vec![vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]],
            vec![true, false, true],
        )
        .unwrap();
        let s = Standardizer::fit(&d);
        let t = s.transform(&[2.0, 10.0]);
        assert!(t[0].abs() < 1e-12); // centered at the mean
        assert_eq!(t[1], 0.0); // constant column: std fallback 1, centered
        let hi = s.transform(&[4.0, 10.0]);
        assert!(hi[0] > 1.0); // ~1.22 sigma
    }
}
