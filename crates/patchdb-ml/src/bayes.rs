//! Naive Bayes models: Gaussian NB and a discretized variant standing in
//! for Weka's BayesNet (which, with default search settings, reduces to a
//! naive structure over discretized attributes — documented substitution).


use crate::classifier::Classifier;
use crate::dataset::Dataset;

/// Gaussian naive Bayes with per-class feature means/variances.
#[derive(Debug, Clone, Default)]
pub struct GaussianNaiveBayes {
    prior_pos: f64,
    mean: [Vec<f64>; 2], // [neg, pos]
    var: [Vec<f64>; 2],
}

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset) {
        let w = data.width();
        let mut count = [0usize; 2];
        let mut mean = [vec![0.0; w], vec![0.0; w]];
        for (row, &y) in data.rows().iter().zip(data.labels()) {
            let c = usize::from(y);
            count[c] += 1;
            for (m, v) in mean[c].iter_mut().zip(row) {
                *m += v;
            }
        }
        for c in 0..2 {
            for m in &mut mean[c] {
                *m /= count[c].max(1) as f64;
            }
        }
        let mut var = [vec![0.0; w], vec![0.0; w]];
        for (row, &y) in data.rows().iter().zip(data.labels()) {
            let c = usize::from(y);
            for ((s, v), m) in var[c].iter_mut().zip(row).zip(&mean[c]) {
                *s += (v - m) * (v - m);
            }
        }
        for c in 0..2 {
            for s in &mut var[c] {
                *s = (*s / count[c].max(1) as f64).max(1e-9); // variance floor
            }
        }
        self.prior_pos = count[1] as f64 / data.len().max(1) as f64;
        self.mean = mean;
        self.var = var;
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.mean[0].is_empty() && self.mean[1].is_empty() {
            return 0.5;
        }
        let log_lik = |c: usize| -> f64 {
            let prior = if c == 1 { self.prior_pos } else { 1.0 - self.prior_pos };
            let mut ll = prior.max(1e-12).ln();
            for ((v, m), s2) in x.iter().zip(&self.mean[c]).zip(&self.var[c]) {
                ll += -0.5 * ((v - m) * (v - m) / s2 + s2.ln() + (2.0 * std::f64::consts::PI).ln());
            }
            ll
        };
        let (l0, l1) = (log_lik(0), log_lik(1));
        let m = l0.max(l1);
        let (e0, e1) = ((l0 - m).exp(), (l1 - m).exp());
        e1 / (e0 + e1)
    }

    fn name(&self) -> &'static str {
        "gaussian-naive-bayes"
    }
}

/// Discretized naive Bayes ("BayesNet-lite"): equal-width bins per feature
/// learned from training ranges, Laplace-smoothed bin likelihoods.
#[derive(Debug, Clone)]
pub struct DiscretizedBayesNet {
    bins: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
    prior_pos: f64,
    /// `log P(bin | class)` per class, feature-major: `[class][feature][bin]`.
    log_lik: [Vec<Vec<f64>>; 2],
}

impl DiscretizedBayesNet {
    /// Creates an untrained model with `bins` equal-width bins per feature.
    pub fn new(bins: usize) -> Self {
        DiscretizedBayesNet {
            bins: bins.max(2),
            lo: Vec::new(),
            hi: Vec::new(),
            prior_pos: 0.5,
            log_lik: [Vec::new(), Vec::new()],
        }
    }

    fn bin_of(&self, feature: usize, v: f64) -> usize {
        let (lo, hi) = (self.lo[feature], self.hi[feature]);
        if hi <= lo {
            return 0;
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.bins as f64) as usize).min(self.bins - 1)
    }
}

impl Classifier for DiscretizedBayesNet {
    fn fit(&mut self, data: &Dataset) {
        let w = data.width();
        self.lo = vec![f64::INFINITY; w];
        self.hi = vec![f64::NEG_INFINITY; w];
        for row in data.rows() {
            for ((lo, hi), v) in self.lo.iter_mut().zip(&mut self.hi).zip(row) {
                *lo = lo.min(*v);
                *hi = hi.max(*v);
            }
        }
        let mut counts = [
            vec![vec![1.0f64; self.bins]; w], // Laplace prior of 1 per bin
            vec![vec![1.0f64; self.bins]; w],
        ];
        let mut class_n = [w as f64 * 0.0 + self.bins as f64; 2]; // per-feature normalizer base
        let mut n_pos = 0usize;
        for (row, &y) in data.rows().iter().zip(data.labels()) {
            let c = usize::from(y);
            if y {
                n_pos += 1;
            }
            for (f, v) in row.iter().enumerate() {
                let b = self.bin_of(f, *v);
                counts[c][f][b] += 1.0;
            }
        }
        class_n[0] = (data.len() - n_pos) as f64 + self.bins as f64;
        class_n[1] = n_pos as f64 + self.bins as f64;
        for c in 0..2 {
            self.log_lik[c] = counts[c]
                .iter()
                .map(|fbins| fbins.iter().map(|n| (n / class_n[c]).ln()).collect())
                .collect();
        }
        self.prior_pos = n_pos as f64 / data.len().max(1) as f64;
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.lo.is_empty() {
            return 0.5;
        }
        let score = |c: usize| -> f64 {
            let prior = if c == 1 { self.prior_pos } else { 1.0 - self.prior_pos };
            let mut ll = prior.max(1e-12).ln();
            for (f, v) in x.iter().enumerate().take(self.log_lik[c].len()) {
                ll += self.log_lik[c][f][self.bin_of(f, *v)];
            }
            ll
        };
        let (l0, l1) = (score(0), score(1));
        let m = l0.max(l1);
        let (e0, e1) = ((l0 - m).exp(), (l1 - m).exp());
        e1 / (e0 + e1)
    }

    fn name(&self) -> &'static str {
        "bayes-net"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    fn gaussian_blobs(n: usize) -> Dataset {
        // Two well-separated blobs along both axes, deterministic jitter.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let j1 = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            let j2 = ((i * 40503) % 1000) as f64 / 1000.0 - 0.5;
            if i % 2 == 0 {
                x.push(vec![j1, j2]);
                y.push(false);
            } else {
                x.push(vec![3.0 + j1, 3.0 + j2]);
                y.push(true);
            }
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn gaussian_nb_separates_blobs() {
        let d = gaussian_blobs(400);
        let (train, test) = d.split(0.8, 1);
        let mut m = GaussianNaiveBayes::new();
        m.fit(&train);
        assert!(evaluate(&m, &test).accuracy() > 0.97);
    }

    #[test]
    fn bayes_net_separates_blobs() {
        let d = gaussian_blobs(400);
        let (train, test) = d.split(0.8, 1);
        let mut m = DiscretizedBayesNet::new(8);
        m.fit(&train);
        assert!(evaluate(&m, &test).accuracy() > 0.95);
    }

    #[test]
    fn priors_shift_probabilities() {
        // 90% negative data: an ambiguous point leans negative.
        let mut x = vec![vec![0.0]; 90];
        x.extend(vec![vec![0.2]; 10]);
        let mut y = vec![false; 90];
        y.extend(vec![true; 10]);
        let d = Dataset::new(x, y).unwrap();
        let mut m = GaussianNaiveBayes::new();
        m.fit(&d);
        assert!(m.predict_proba(&[0.1]) < 0.5);
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let d = Dataset::new(vec![vec![1.0], vec![1.0]], vec![true, false]).unwrap();
        let mut g = GaussianNaiveBayes::new();
        g.fit(&d);
        assert!(g.predict_proba(&[1.0]).is_finite());
        let mut b = DiscretizedBayesNet::new(4);
        b.fit(&d);
        assert!(b.predict_proba(&[1.0]).is_finite());
    }

    #[test]
    fn untrained_predicts_half() {
        assert_eq!(GaussianNaiveBayes::new().predict_proba(&[0.0]), 0.5);
        assert_eq!(DiscretizedBayesNet::new(4).predict_proba(&[0.0]), 0.5);
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let d = gaussian_blobs(100);
        let mut m = DiscretizedBayesNet::new(8);
        m.fit(&d);
        let p = m.predict_proba(&[1e9, -1e9]);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    }
}
