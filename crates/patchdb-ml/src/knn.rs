//! k-nearest-neighbors classifier. Not one of the paper's ten ensemble
//! members, but the natural contrast to nearest link search (Section
//! III-B-3 explicitly distinguishes the two), so the ablation benches use
//! it.

use crate::classifier::{Classifier, Standardizer};
use crate::dataset::Dataset;

/// Brute-force k-NN over z-scored features.
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    scaler: Standardizer,
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl KNearestNeighbors {
    /// Creates an untrained model voting over `k` neighbors.
    pub fn new(k: usize) -> Self {
        KNearestNeighbors {
            k: k.max(1),
            scaler: Standardizer::default(),
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, data: &Dataset) {
        self.scaler = Standardizer::fit(data);
        self.rows = data.rows().iter().map(|r| self.scaler.transform(r)).collect();
        self.labels = data.labels().to_vec();
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.rows.is_empty() {
            return 0.5;
        }
        let z = self.scaler.transform(x);
        let mut dists: Vec<(f64, bool)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &y)| {
                let d: f64 = r.iter().zip(&z).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, y)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let pos = dists[..k].iter().filter(|(_, y)| *y).count();
        pos as f64 / k as f64
    }

    fn name(&self) -> &'static str {
        "k-nearest-neighbors"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::evaluate;

    #[test]
    fn memorizes_with_k1() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![false, false, true, true],
        )
        .unwrap();
        let mut m = KNearestNeighbors::new(1);
        m.fit(&d);
        assert_eq!(evaluate(&m, &d).accuracy(), 1.0);
    }

    #[test]
    fn k3_votes() {
        let d = Dataset::new(
            vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0]],
            vec![true, true, false, false],
        )
        .unwrap();
        let mut m = KNearestNeighbors::new(3);
        m.fit(&d);
        // Neighbors of 0.05: {0.0 T, 0.1 T, 0.2 F} → 2/3.
        assert!((m.predict_proba(&[0.05]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn untrained_predicts_half() {
        assert_eq!(KNearestNeighbors::new(3).predict_proba(&[1.0]), 0.5);
    }
}
