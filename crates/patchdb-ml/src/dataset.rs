//! Feature-matrix datasets with deterministic splits.

use std::fmt;

use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// Rows and labels have different lengths.
    LengthMismatch {
        /// Number of feature rows supplied.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Rows have inconsistent widths.
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Index of the first offending row.
        row: usize,
        /// Its width.
        found: usize,
    },
    /// A feature value is NaN or infinite.
    NonFinite {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DatasetError::RaggedRows { expected, row, found } => {
                write!(f, "row {row} has {found} features, expected {expected}")
            }
            DatasetError::NonFinite { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A binary-labeled feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<bool>,
}

impl Dataset {
    /// Creates a dataset, validating shape and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on ragged rows, length mismatch, or
    /// non-finite values.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<bool>) -> Result<Self, DatasetError> {
        if x.len() != y.len() {
            return Err(DatasetError::LengthMismatch { rows: x.len(), labels: y.len() });
        }
        let width = x.first().map_or(0, Vec::len);
        for (i, row) in x.iter().enumerate() {
            if row.len() != width {
                return Err(DatasetError::RaggedRows { expected: width, row: i, found: row.len() });
            }
            for (j, v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFinite { row: i, col: j });
                }
            }
        }
        Ok(Dataset { x, y })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per row (0 for an empty dataset).
    pub fn width(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// The feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The labels (true = positive class, i.e. *security patch*).
    pub fn labels(&self) -> &[bool] {
        &self.y
    }

    /// One example.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn example(&self, i: usize) -> (&[f64], bool) {
        (&self.x[i], self.y[i])
    }

    /// Number of positive examples.
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|b| **b).count()
    }

    /// Deterministic stratified shuffle-split: `train_frac` of each class
    /// goes to the first dataset, the rest to the second. Matches the
    /// paper's "randomly select 80% as the training set" protocol while
    /// keeping class balance stable across the split.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut pos: Vec<usize> = (0..self.len()).filter(|&i| self.y[i]).collect();
        let mut neg: Vec<usize> = (0..self.len()).filter(|&i| !self.y[i]).collect();
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);

        let take = |v: &[usize]| ((v.len() as f64) * train_frac).round() as usize;
        let (pt, nt) = (take(&pos), take(&neg));

        let gather = |idx: &[usize]| Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        };
        let train_idx: Vec<usize> = pos[..pt].iter().chain(&neg[..nt]).copied().collect();
        let test_idx: Vec<usize> = pos[pt..].iter().chain(&neg[nt..]).copied().collect();
        (gather(&train_idx), gather(&test_idx))
    }

    /// Concatenates two datasets (e.g. NVD-train + wild-train for Table VI).
    ///
    /// # Panics
    ///
    /// Panics when widths disagree and both are non-empty.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.width(), other.width(), "concat of mismatched widths");
        }
        Dataset {
            x: self.x.iter().chain(&other.x).cloned().collect(),
            y: self.y.iter().chain(&other.y).copied().collect(),
        }
    }

    /// Bootstrap sample of `n` examples with replacement (for bagging).
    pub fn bootstrap(&self, n: usize, rng: &mut Xoshiro256pp) -> Dataset {
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let i = rng.gen_range(0..self.len());
            x.push(self.x[i].clone());
            y.push(self.y[i]);
        }
        Dataset { x, y }
    }

    /// Splits off a validation fraction without stratification (for
    /// reduced-error pruning).
    pub fn holdout(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        let cut = ((self.len() as f64) * (1.0 - frac)).round() as usize;
        let gather = |ix: &[usize]| Dataset {
            x: ix.iter().map(|&i| self.x[i].clone()).collect(),
            y: ix.iter().map(|&i| self.y[i]).collect(),
        };
        (gather(&idx[..cut]), gather(&idx[cut..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![true, false]),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]),
            Err(DatasetError::RaggedRows { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![f64::NAN]], vec![true]),
            Err(DatasetError::NonFinite { .. })
        ));
    }

    #[test]
    fn stratified_split_preserves_balance() {
        let d = toy(300);
        let (train, test) = d.split(0.8, 1);
        assert_eq!(train.len() + test.len(), 300);
        let frac = |ds: &Dataset| ds.positives() as f64 / ds.len() as f64;
        assert!((frac(&train) - frac(&d)).abs() < 0.02);
        assert!((frac(&test) - frac(&d)).abs() < 0.05);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(100);
        let (a1, b1) = d.split(0.7, 9);
        let (a2, b2) = d.split(0.7, 9);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = d.split(0.7, 10);
        assert_ne!(a1, a3);
    }

    #[test]
    fn concat_appends() {
        let d = toy(10);
        let e = toy(5);
        let c = d.concat(&e);
        assert_eq!(c.len(), 15);
        assert_eq!(c.width(), 1);
    }

    #[test]
    fn bootstrap_has_requested_size() {
        let d = toy(50);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let b = d.bootstrap(80, &mut rng);
        assert_eq!(b.len(), 80);
    }

    #[test]
    fn holdout_partitions() {
        let d = toy(100);
        let (grow, prune) = d.holdout(0.25, 4);
        assert_eq!(grow.len(), 75);
        assert_eq!(prune.len(), 25);
    }
}
