//! Holds N idle keep-alive connections against a running
//! `patchdb serve` instance — the concurrent-connection soak used by
//! the `tests/serve.rs` 10k-idle-conns test and the CI smoke step.
//!
//! Runs as its own process so the held client-side file descriptors
//! count against *this* process's `RLIMIT_NOFILE`, not the server's.
//!
//! ```text
//! patchdb-idle-conns <addr> <count> [--probe]
//! ```
//!
//! Connects `<count>` sockets, optionally probes the server while they
//! are held (`/healthz` must answer 200 and `/metrics` must report
//! `serve.open_conns >= count`), prints `HELD <count>`, then blocks
//! until stdin reaches EOF. Dropping stdin releases every connection at
//! once. Exits non-zero if any connect or probe fails.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use patchdb_serve::client;

fn fail(why: &str) -> ExitCode {
    eprintln!("patchdb-idle-conns: {why}");
    eprintln!("usage: patchdb-idle-conns <addr> <count> [--probe]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let probe = args.iter().any(|a| a == "--probe");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [addr, count] = positional[..] else {
        return fail("expected <addr> <count>");
    };
    let Ok(addr) = addr.parse::<SocketAddr>() else {
        return fail("bad address");
    };
    let Ok(count) = count.parse::<usize>() else {
        return fail("bad count");
    };

    // Client-side fds: the held sockets plus stdio and slack.
    if let Err(e) = patchdb_rt::net::raise_nofile_limit(count as u64 + 64) {
        eprintln!("patchdb-idle-conns: raising RLIMIT_NOFILE failed: {e}");
    }

    let mut held: Vec<TcpStream> = Vec::with_capacity(count);
    for i in 0..count {
        match TcpStream::connect(addr) {
            Ok(stream) => held.push(stream),
            Err(e) => {
                eprintln!("patchdb-idle-conns: connect #{i} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if probe {
        let timeout = Duration::from_secs(10);
        match client::request_timeout(addr, "GET", "/healthz", b"", timeout) {
            Ok(reply) if reply.status == 200 => {}
            Ok(reply) => {
                eprintln!("patchdb-idle-conns: /healthz answered {}", reply.status);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("patchdb-idle-conns: /healthz failed under load: {e}");
                return ExitCode::FAILURE;
            }
        }
        let metrics = match client::request_timeout(addr, "GET", "/metrics", b"", timeout) {
            Ok(reply) if reply.status == 200 => reply.body_text(),
            Ok(reply) => {
                eprintln!("patchdb-idle-conns: /metrics answered {}", reply.status);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("patchdb-idle-conns: /metrics failed under load: {e}");
                return ExitCode::FAILURE;
            }
        };
        let open = metrics
            .lines()
            .find_map(|l| l.strip_prefix("patchdb_gauge{name=\"serve.open_conns\"} "))
            .and_then(|v| v.parse::<i64>().ok())
            .unwrap_or(0);
        if open < count as i64 {
            eprintln!("patchdb-idle-conns: open_conns {open} < held {count}");
            return ExitCode::FAILURE;
        }
    }

    println!("HELD {count}");

    // Hold everything until the parent closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(held);
    ExitCode::SUCCESS
}
