//! `patchdb` — command-line front end for the PatchDB reproduction.
//!
//! Run `patchdb --help` (or `patchdb help <command>`) for usage. Exit
//! codes: `0` success, `2` usage mistake, `1` any runtime failure.

use std::process::ExitCode;

use patchdb::{
    classify_patch, mine_fix_patterns, pattern_frequencies, signatures_of, test_presence,
    BuildOptions, BuildTelemetry, Error, PatchDb, PresenceVerdict, ALL_CATEGORIES,
};
use patchdb_rt::obs;
use patchdb_serve::{
    IndexHandle, ReloadSource, ServeConfig, ServeIndex, Server, ShardedIndex, Snapshot,
};

const USAGE: &str = "usage: patchdb <command> [...]

commands:
  build     construct the dataset against a synthetic forge; write JSON
  trace     `build --trace`: also emit TRACE_build.json + stage timings
  profile   build under the sampling profiler; write folded stacks
  stats     headline counts and category distribution of a dataset
  classify  rule-based 12-type classification vs ground truth
  patterns  Table VII-style fix-pattern mining
  analyze   most discriminative Table I features
  scan      vulnerability-signature scan of a C file
  serve     long-lived HTTP query server over a dataset or snapshot
  snapshot  compile a dataset into a binary patchdb-snapshot/v1 file
  help      show usage for a command

`patchdb help <command>` prints per-command flags; `--version` prints
the crate version.";

/// Per-command usage text, `None` for unknown commands.
fn usage_for(command: &str) -> Option<&'static str> {
    Some(match command {
        "build" | "trace" => {
            "usage: patchdb build [--seed N] [--tiny] [--no-synth] [--out FILE]
                     [--trace] [--trace-out FILE]
                     [--perfetto] [--perfetto-out FILE]

  --seed N         pipeline seed (default 42)
  --tiny           small corpus for quick runs and tests
  --no-synth       skip the synthetic augmentation stage
  --out FILE       write the built dataset as JSON
  --trace          record spans/counters, write TRACE_build.json
  --trace-out FILE trace output path (default TRACE_build.json)
  --perfetto       also journal the build through the flight recorder and
                   write the merged span tree + journal as Chrome
                   trace-event JSON (open in Perfetto / chrome://tracing);
                   implies --trace
  --perfetto-out FILE
                   perfetto output path (default TRACE_build.perfetto.json)

`patchdb trace` is shorthand for `patchdb build --trace`."
        }
        "profile" => {
            "usage: patchdb profile [--seed N] [--tiny] [--no-synth] [--hz N]
                       [--profile-out FILE] [--top N]

Runs a build with the span-path sampling profiler attached: worker
threads mirror their span paths into seqlock slots, a sampler thread
walks them at --hz, and the aggregate lands as folded stacks —
`flamegraph.pl PROFILE_build.folded > flame.svg` renders it directly.

  --seed N           pipeline seed (default 42)
  --tiny             small corpus for quick runs and tests
  --no-synth         skip the synthetic augmentation stage
  --hz N             sampling rate (default 97, clamped to 1..=1000;
                     prime, so periodic work is not aliased)
  --profile-out FILE folded-stacks output (default PROFILE_build.folded)
  --top N            rows in the printed self-time table (default 10)"
        }
        "stats" => "usage: patchdb stats <FILE>\n\n  <FILE>  dataset JSON from `patchdb build --out`",
        "classify" => "usage: patchdb classify <FILE>\n\n  <FILE>  dataset JSON from `patchdb build --out`",
        "patterns" => "usage: patchdb patterns <FILE>\n\n  <FILE>  dataset JSON from `patchdb build --out`",
        "analyze" => "usage: patchdb analyze <FILE>\n\n  <FILE>  dataset JSON from `patchdb build --out`",
        "scan" => {
            "usage: patchdb scan <FILE> <TARGET.c>\n\n  <FILE>      dataset JSON\n  <TARGET.c>  C source to test against every vulnerability signature"
        }
        "snapshot" => {
            "usage: patchdb snapshot <FILE> [--out PATH]

Builds the full serve index (weights, forest, signatures) once and
writes it as a binary patchdb-snapshot/v1 file. `patchdb serve
--snapshot PATH` boots from it without re-running any of the pipeline,
answering byte-identically to a fresh build.

  <FILE>      dataset JSON from `patchdb build --out`
  --out PATH  snapshot output path (default patchdb.snapshot)"
        }
        "serve" => {
            "usage: patchdb serve [<FILE>] [--snapshot PATH] [--shards N]
                     [--addr HOST:PORT] [--threads N]
                     [--batch-window-ms N] [--max-inflight N]
                     [--access-log PATH|-] [--slow-ms N]
                     [--keep-alive on|off] [--idle-timeout-ms N]
                     [--max-requests-per-conn N] [--max-conns N]
                     [--tracing on|off] [--tsdb-retention-s N]
                     [--slo-identify-p99-ms N] [--slo-availability-pct F]

  <FILE>              dataset JSON to index and serve (optional when
                      --snapshot is given)
  --snapshot PATH     boot from a patchdb-snapshot/v1 file written by
                      `patchdb snapshot` — skips the learning pipeline
                      entirely; responses are byte-identical to a fresh
                      build of the same dataset
  --shards N          partition the index across N shards with
                      scatter-gather serving; answers are byte-identical
                      to --shards 1 (default 1)
  --addr HOST:PORT    bind address (default 127.0.0.1:7979; port 0 = ephemeral)
  --threads N         worker pool size (default 0 = auto)
  --batch-window-ms N identify micro-batch window (default 2)
  --max-inflight N    admission bound; beyond it requests get 503 (default 128)
  --access-log PATH|- JSON-lines access log, one line per request with its
                      request id and stage breakdown (- = stdout; default off)
  --access-log-max-mb N
                      rotate the access log (PATH -> PATH.1) when the file
                      would cross N MiB; lines are never split (default 0 = off)
  --flight on|off     per-thread flight recorder: /debug/flight + the
                      panic-hook FLIGHT_<pid>.json dump (default on)
  --sampler on|off    span-path mirroring for /debug/profile (default on)
  --slow-ms N         keep requests at least this slow as /debug/slow
                      exemplars (default 100)
  --keep-alive on|off HTTP/1.1 keep-alive; off forces Connection: close on
                      every response (default on)
  --idle-timeout-ms N close idle keep-alive connections after N ms; also the
                      write-stall bound (default 5000)
  --max-requests-per-conn N
                      close a connection after N responses (default 0 = off)
  --max-conns N       concurrent-connection cap; over it new connections are
                      answered 503 and closed (default 10240)
  --tracing on|off    request tracing, per-shard attribution, the embedded
                      time-series store, and the SLO engine; responses are
                      byte-identical either way except the documented
                      X-Patchdb-* headers (default on)
  --tsdb-retention-s N
                      per-second metric samples kept per series by the
                      embedded time-series ring (default 600)
  --slo-identify-p99-ms N
                      identify latency SLO threshold: a request slower than
                      this burns error budget (default 250)
  --slo-availability-pct F
                      availability objective for the burn-rate engine,
                      e.g. 99.9 (default 99.9, clamped to 50..=99.999)

endpoints: POST /v1/identify /v1/classify /v1/scan /admin/reload,
           GET /v1/stats /v1/patch/<id> /healthz /metrics
           GET /debug/requests /debug/slow /debug/flight?ms=N
           GET /debug/profile?seconds=N&hz=N
           GET /debug/trace/<id> /debug/timeseries?metric=M&secs=N
           GET /debug/slo
(every GET also answers HEAD with the same headers and no body)

Every response carries X-Patchdb-Request-Id and X-Patchdb-Trace-Id; a
client-sent X-Patchdb-Trace-Id is honored and echoed, and its trace is
queryable at GET /debug/trace/<id> while it stays in the debug ring.

POST /admin/reload (or SIGHUP) rebuilds the index from the boot source
and atomically swaps it in; in-flight requests finish on the old
generation. /healthz reports the served generation and uptime as
`ok gen=N up=S`."
        }
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.is_usage() => {
            eprintln!("error: {e}");
            let command = args.first().map(String::as_str).unwrap_or("");
            eprintln!("{}", usage_for(command).unwrap_or(USAGE));
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Error>;

fn run(args: &[String]) -> CliResult {
    let command = args.first().map(String::as_str);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let text = command.and_then(usage_for).unwrap_or(USAGE);
        println!("{text}");
        return Ok(());
    }
    match command {
        Some("--version" | "-V" | "version") => {
            println!("patchdb {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        Some("help") => {
            let text = args.get(1).and_then(|c| usage_for(c)).unwrap_or(USAGE);
            println!("{text}");
            Ok(())
        }
        Some("build") => cmd_build(&args[1..], false),
        Some("trace") => cmd_build(&args[1..], true),
        Some("profile") => cmd_profile(&args[1..]),
        Some("stats") => with_db(&args[1..], cmd_stats),
        Some("classify") => with_db(&args[1..], cmd_classify),
        Some("patterns") => with_db(&args[1..], cmd_patterns),
        Some("analyze") => with_db(&args[1..], cmd_analyze),
        Some("scan") => cmd_scan(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some(other) => Err(Error::usage(format!("unknown command `{other}`"))),
        None => Err(Error::usage("expected a command")),
    }
}

/// Parses the operand after a flag like `--seed`.
fn value_after<'a, I: Iterator<Item = &'a String>>(
    it: &mut I,
    flag: &str,
) -> Result<&'a String, Error> {
    it.next().ok_or_else(|| Error::usage(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, Error> {
    text.parse().map_err(|_| Error::usage(format!("{flag} needs a number, got `{text}`")))
}

fn parse_on_off(text: &str, flag: &str) -> Result<bool, Error> {
    match text {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(Error::usage(format!("{flag} expects on|off, got `{other}`"))),
    }
}

fn cmd_build(args: &[String], force_trace: bool) -> CliResult {
    let mut seed = 42u64;
    let mut tiny = false;
    let mut synth = true;
    let mut trace = force_trace;
    let mut perfetto = false;
    let mut out: Option<String> = None;
    let mut trace_out = "TRACE_build.json".to_owned();
    let mut perfetto_out = "TRACE_build.perfetto.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = parse_num(value_after(&mut it, "--seed")?, "--seed")?,
            "--tiny" => tiny = true,
            "--no-synth" => synth = false,
            "--trace" => trace = true,
            "--perfetto" => {
                perfetto = true;
                trace = true;
            }
            "--out" => out = Some(value_after(&mut it, "--out")?.clone()),
            "--trace-out" => trace_out = value_after(&mut it, "--trace-out")?.clone(),
            "--perfetto-out" => {
                perfetto_out = value_after(&mut it, "--perfetto-out")?.clone();
                perfetto = true;
                trace = true;
            }
            other => return Err(Error::usage(format!("unknown flag {other}"))),
        }
    }
    if trace {
        obs::set_enabled(true); // same effect as PATCHDB_TRACE=1
    }
    if perfetto {
        // Journal span enter/exit and counter deltas with real
        // timestamps and thread ids alongside the duration-only span
        // tree, so the export has true thread tracks.
        obs::flight::set_enabled(true);
    }

    let options = if tiny {
        BuildOptions::tiny(seed)
    } else {
        BuildOptions::default_scale(seed)
    }
    .synthesize(synth);

    eprintln!(
        "building PatchDB (seed {seed}, ~{} commits)...",
        options.corpus.expected_commits()
    );
    let report = PatchDb::build(&options);
    println!("{}", report.db.stats());
    println!("\nround  pool      range  candidates  verified  ratio");
    for r in &report.rounds {
        println!(
            "{:>5}  {:<8} {:>6}  {:>10}  {:>8}  {:>4.0}%",
            r.round, r.pool, r.search_range, r.candidates, r.verified_security,
            100.0 * r.ratio
        );
    }
    if let Some(path) = out {
        let json = report.db.to_json()?;
        std::fs::write(&path, &json)?;
        eprintln!("\nwrote {} bytes to {path}", json.len());
    }
    // `PATCHDB_TRACE=1 patchdb build` (no flags) also lands here: the
    // pipeline saw tracing enabled and attached telemetry.
    if let Some(telemetry) = &report.telemetry {
        let json = telemetry.to_json().to_pretty_string() + "\n";
        std::fs::write(&trace_out, &json)?;
        eprintln!("\nwrote trace ({} bytes) to {trace_out}", json.len());
        if perfetto {
            let snap = obs::flight::snapshot(None);
            let doc = obs::export::merged_chrome(&telemetry.trace, &snap);
            let json = doc.to_compact_string() + "\n";
            std::fs::write(&perfetto_out, &json)?;
            eprintln!(
                "wrote perfetto trace ({} bytes, {} journal events) to {perfetto_out}",
                json.len(),
                snap.events.len()
            );
        }
        print_stage_summary(telemetry);
    }
    Ok(())
}

/// `patchdb profile`: a build with the span-path sampling profiler
/// attached; writes flamegraph.pl-compatible folded stacks and prints a
/// top-N self-time table.
fn cmd_profile(args: &[String]) -> CliResult {
    let mut seed = 42u64;
    let mut tiny = false;
    let mut synth = true;
    let mut hz = 97u64;
    let mut top = 10usize;
    let mut profile_out = "PROFILE_build.folded".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = parse_num(value_after(&mut it, "--seed")?, "--seed")?,
            "--tiny" => tiny = true,
            "--no-synth" => synth = false,
            "--hz" => hz = parse_num(value_after(&mut it, "--hz")?, "--hz")?,
            "--top" => top = parse_num(value_after(&mut it, "--top")?, "--top")?,
            "--profile-out" => profile_out = value_after(&mut it, "--profile-out")?.clone(),
            other => return Err(Error::usage(format!("unknown flag {other}"))),
        }
    }
    let options = if tiny {
        BuildOptions::tiny(seed)
    } else {
        BuildOptions::default_scale(seed)
    }
    .synthesize(synth);

    // Spans must exist for the mirror to have paths to publish.
    obs::set_enabled(true);
    obs::sampler::set_mirroring(true);
    let sampler = obs::sampler::BackgroundSampler::start(hz);
    eprintln!(
        "profiling build at {hz} Hz (seed {seed}, ~{} commits)...",
        options.corpus.expected_commits()
    );
    let report = PatchDb::build(&options);
    let profile = sampler.stop();
    obs::sampler::set_mirroring(false);
    eprintln!("{}", report.db.stats());

    std::fs::write(&profile_out, profile.folded())?;
    println!(
        "{} samples at {} Hz over {} distinct span paths -> {profile_out}",
        profile.samples,
        profile.hz,
        profile.stacks.len()
    );
    println!("\ntop self-time frames (samples):");
    for (name, n) in profile.self_time_top(top) {
        let share = 100.0 * n as f64 / profile.samples.max(1) as f64;
        println!("  {n:>8}  {share:>5.1}%  {name}");
    }
    println!("\nrender: flamegraph.pl {profile_out} > flame.svg");
    Ok(())
}

/// Prints the five top-level stage timings plus the NLS pruning
/// efficiency — the human-readable view of TRACE_build.json.
fn print_stage_summary(telemetry: &BuildTelemetry) {
    let trace = &telemetry.trace;
    if let Some(build) = trace.find_span("build") {
        println!("\nbuild stages ({:.2}s total):", build.ns as f64 / 1e9);
        for stage in &build.children {
            println!("  {:<14} {:>8.1} ms", stage.name, stage.ns as f64 / 1e6);
        }
    }
    let evaluated = trace.counter("nls.dist_evaluated").unwrap_or(0);
    let skipped = trace.counter("nls.pruned_norm").unwrap_or(0)
        + trace.counter("nls.cells_skipped").unwrap_or(0)
        + trace.counter("nls.quant_rejects").unwrap_or(0);
    if evaluated + skipped > 0 {
        println!(
            "nls: {evaluated} distances evaluated, {skipped} skipped by index/norm bounds \
             ({:.1}% of comparisons avoided)",
            100.0 * skipped as f64 / (evaluated + skipped) as f64
        );
    }
}

fn load_db(path: &str) -> Result<PatchDb, Error> {
    let text = std::fs::read_to_string(path)?;
    PatchDb::from_json(&text)
}

fn with_db(args: &[String], f: fn(&PatchDb) -> CliResult) -> CliResult {
    let path = args.first().ok_or_else(|| Error::usage("expected a dataset JSON path"))?;
    f(&load_db(path)?)
}

fn cmd_stats(db: &PatchDb) -> CliResult {
    println!("{}", db.stats());
    let dist = PatchDb::category_distribution(db.security_patches());
    println!("\nground-truth category distribution (security patches):");
    for c in ALL_CATEGORIES {
        if let Some(p) = dist.get(&c) {
            println!("  {:>2}  {:<40} {:>5.1}%", c.type_id(), c.label(), 100.0 * p);
        }
    }
    Ok(())
}

fn cmd_classify(db: &PatchDb) -> CliResult {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut counts = [0usize; 12];
    for r in db.security_patches() {
        let predicted = classify_patch(&r.patch);
        counts[predicted.type_id() - 1] += 1;
        if let Some(truth) = r.truth_category {
            total += 1;
            hits += usize::from(predicted == truth);
        }
    }
    println!("rule-based classification of {} security patches:", db.security_patches().count());
    for c in ALL_CATEGORIES {
        println!("  {:>2}  {:<40} {:>6}", c.type_id(), c.label(), counts[c.type_id() - 1]);
    }
    if total > 0 {
        println!(
            "\nagreement with ground truth: {hits}/{total} = {:.1}%",
            100.0 * hits as f64 / total as f64
        );
    }
    Ok(())
}

fn cmd_patterns(db: &PatchDb) -> CliResult {
    let freqs = pattern_frequencies(db.security_patches().map(|r| &r.patch));
    println!("fix patterns across {} security patches:", db.security_patches().count());
    for (p, n) in freqs {
        println!("  {:>6}×  {}", n, p.label());
    }
    let nonsec_hits = db
        .non_security
        .iter()
        .filter(|r| !mine_fix_patterns(&r.patch).is_empty())
        .count();
    println!(
        "(control: {nonsec_hits}/{} non-security patches match any pattern)",
        db.non_security.len()
    );
    Ok(())
}

fn cmd_analyze(db: &PatchDb) -> CliResult {
    use patchdb_features::{rank_discriminative, FeatureSummary};
    let sec: Vec<_> = db.security_patches().map(|r| r.features).collect();
    let nonsec: Vec<_> = db.non_security.iter().map(|r| r.features).collect();
    if sec.is_empty() || nonsec.is_empty() {
        return Err(Error::Schema("dataset needs both classes for analysis".into()));
    }
    let ranked = rank_discriminative(&FeatureSummary::of(&sec), &FeatureSummary::of(&nonsec));
    println!("top discriminative Table I features (security vs non-security):");
    println!("{:<40} {:>8} {:>10} {:>10}", "feature", "effect", "sec mean", "nonsec");
    for d in ranked.iter().take(15) {
        println!(
            "{:<40} {:>8.2} {:>10.2} {:>10.2}",
            d.name, d.effect_size, d.mean_a, d.mean_b
        );
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> CliResult {
    let db_path = args.first().ok_or_else(|| Error::usage("expected a dataset JSON path"))?;
    let target_path = args.get(1).ok_or_else(|| Error::usage("expected a target .c file"))?;
    let db = load_db(db_path)?;
    let target = std::fs::read_to_string(target_path)?;

    let mut vulnerable = 0usize;
    let mut patched = 0usize;
    for record in db.security_patches() {
        for sig in signatures_of(&record.patch) {
            match test_presence(&sig, &target) {
                PresenceVerdict::Vulnerable => {
                    vulnerable += 1;
                    println!(
                        "VULNERABLE clone of {} ({})",
                        record.commit.short(),
                        record.cve_id.as_deref().unwrap_or("silent fix")
                    );
                }
                PresenceVerdict::Patched => patched += 1,
                PresenceVerdict::NotApplicable => {}
            }
        }
    }
    println!("\n{target_path}: {vulnerable} vulnerable-signature hits, {patched} patched-signature hits");
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut path: Option<&String> = None;
    let mut snapshot: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config = config.addr(value_after(&mut it, "--addr")?),
            "--snapshot" => {
                snapshot = Some(value_after(&mut it, "--snapshot")?.clone());
            }
            "--shards" => {
                config = config.shards(parse_num(value_after(&mut it, "--shards")?, "--shards")?);
            }
            "--threads" => {
                config =
                    config.threads(parse_num(value_after(&mut it, "--threads")?, "--threads")?);
            }
            "--batch-window-ms" => {
                config = config.batch_window_ms(parse_num(
                    value_after(&mut it, "--batch-window-ms")?,
                    "--batch-window-ms",
                )?);
            }
            "--max-inflight" => {
                config = config.max_inflight(parse_num(
                    value_after(&mut it, "--max-inflight")?,
                    "--max-inflight",
                )?);
            }
            "--access-log" => {
                config = config.access_log(value_after(&mut it, "--access-log")?);
            }
            "--access-log-max-mb" => {
                config = config.access_log_max_mb(parse_num(
                    value_after(&mut it, "--access-log-max-mb")?,
                    "--access-log-max-mb",
                )?);
            }
            "--flight" => {
                config = config.flight(parse_on_off(value_after(&mut it, "--flight")?, "--flight")?);
            }
            "--sampler" => {
                config =
                    config.sampler(parse_on_off(value_after(&mut it, "--sampler")?, "--sampler")?);
            }
            "--slow-ms" => {
                config =
                    config.slow_ms(parse_num(value_after(&mut it, "--slow-ms")?, "--slow-ms")?);
            }
            "--keep-alive" => {
                let v = value_after(&mut it, "--keep-alive")?;
                config = match v.as_str() {
                    "on" => config.keep_alive(true),
                    "off" => config.keep_alive(false),
                    other => {
                        return Err(Error::usage(format!(
                            "--keep-alive expects on|off, got `{other}`"
                        )));
                    }
                };
            }
            "--idle-timeout-ms" => {
                config = config.idle_timeout_ms(parse_num(
                    value_after(&mut it, "--idle-timeout-ms")?,
                    "--idle-timeout-ms",
                )?);
            }
            "--max-requests-per-conn" => {
                config = config.max_requests_per_conn(parse_num(
                    value_after(&mut it, "--max-requests-per-conn")?,
                    "--max-requests-per-conn",
                )?);
            }
            "--max-conns" => {
                config = config.max_conns(parse_num(
                    value_after(&mut it, "--max-conns")?,
                    "--max-conns",
                )?);
            }
            "--tracing" => {
                config =
                    config.tracing(parse_on_off(value_after(&mut it, "--tracing")?, "--tracing")?);
            }
            "--tsdb-retention-s" => {
                config = config.tsdb_retention_s(parse_num(
                    value_after(&mut it, "--tsdb-retention-s")?,
                    "--tsdb-retention-s",
                )?);
            }
            "--slo-identify-p99-ms" => {
                config = config.slo_identify_p99_ms(parse_num(
                    value_after(&mut it, "--slo-identify-p99-ms")?,
                    "--slo-identify-p99-ms",
                )?);
            }
            "--slo-availability-pct" => {
                config = config.slo_availability_pct(parse_num(
                    value_after(&mut it, "--slo-availability-pct")?,
                    "--slo-availability-pct",
                )?);
            }
            other if other.starts_with('-') => {
                return Err(Error::usage(format!("unknown flag {other}")));
            }
            _ if path.is_none() => path = Some(a),
            other => return Err(Error::usage(format!("unexpected operand `{other}`"))),
        }
    }
    // Boot source: a snapshot skips the learning pipeline entirely; a
    // dataset path runs it. Either becomes the reload source for
    // `POST /admin/reload` and SIGHUP.
    let index = match (&snapshot, path) {
        (Some(snap), _) => {
            eprintln!("loading snapshot {snap}...");
            let index = ServeIndex::load_snapshot(snap)?;
            config = config.snapshot(snap.clone());
            index
        }
        (None, Some(path)) => {
            eprintln!("loading {path}...");
            let db = load_db(path)?;
            eprintln!("indexing (weights + forest + signatures)...");
            let index = ServeIndex::build(db);
            config = config.reload_from(ReloadSource::Dataset(path.clone()));
            index
        }
        (None, None) => {
            return Err(Error::usage("expected a dataset JSON path or --snapshot"));
        }
    };
    let shards = config.shards;
    eprintln!(
        "{} signatures compiled; starting server ({shards} shard{})",
        index.signature_count(),
        if shards == 1 { "" } else { "s" }
    );
    let handle = IndexHandle::new(ShardedIndex::from_index(index, shards));
    let server = Server::start(handle, &config)?;
    println!("listening on http://{} ({} workers)", server.addr(), server.workers());
    server.wait();
    Ok(())
}

/// `patchdb snapshot`: build the serve index once and persist it as a
/// binary patchdb-snapshot/v1 file for instant `serve --snapshot` boots.
fn cmd_snapshot(args: &[String]) -> CliResult {
    let mut path: Option<&String> = None;
    let mut out = "patchdb.snapshot".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = value_after(&mut it, "--out")?.clone(),
            other if other.starts_with('-') => {
                return Err(Error::usage(format!("unknown flag {other}")));
            }
            _ if path.is_none() => path = Some(a),
            other => return Err(Error::usage(format!("unexpected operand `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| Error::usage("expected a dataset JSON path"))?;
    eprintln!("loading {path}...");
    let db = load_db(path)?;
    eprintln!("indexing (weights + forest + signatures)...");
    let index = ServeIndex::build(db);
    let encoded = Snapshot::encode(&index);
    encoded.write_to(&out)?;
    println!(
        "wrote {} bytes ({} signatures) to {out}",
        encoded.len(),
        index.signature_count()
    );
    Ok(())
}
