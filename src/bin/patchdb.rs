//! `patchdb` — command-line front end for the PatchDB reproduction.
//!
//! ```text
//! patchdb build [--seed N] [--tiny] [--no-synth] [--out FILE] [--trace] [--trace-out FILE]
//!     construct the dataset against a synthetic forge; write JSON.
//!     with --trace (or PATCHDB_TRACE=1) also write the span tree and
//!     metrics of the build to TRACE_build.json (path via --trace-out)
//! patchdb trace [build flags]
//!     shorthand for `build --trace`: a traced build that always emits
//!     TRACE_build.json and prints the stage timings
//! patchdb stats <FILE>
//!     headline counts and category distribution of a JSON dataset
//! patchdb classify <FILE>
//!     rule-based 12-type classification, scored against ground truth
//! patchdb patterns <FILE>
//!     Table VII-style fix-pattern mining over the security patches
//! patchdb scan <FILE> <TARGET.c>
//!     vulnerability-signature scan of a C file against the dataset
//! patchdb analyze <FILE>
//!     most discriminative Table I features, security vs non-security
//! ```

use std::process::ExitCode;

use patchdb::{
    classify_patch, mine_fix_patterns, pattern_frequencies, signatures_of, test_presence,
    BuildOptions, BuildTelemetry, PatchDb, PresenceVerdict, ALL_CATEGORIES,
};
use patchdb_rt::obs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..], false),
        Some("trace") => cmd_build(&args[1..], true),
        Some("stats") => with_db(&args[1..], cmd_stats),
        Some("classify") => with_db(&args[1..], cmd_classify),
        Some("patterns") => with_db(&args[1..], cmd_patterns),
        Some("analyze") => with_db(&args[1..], cmd_analyze),
        Some("scan") => cmd_scan(&args[1..]),
        _ => {
            eprintln!("usage: patchdb <build|trace|stats|classify|patterns|analyze|scan> [...]");
            eprintln!("see `src/bin/patchdb.rs` header for per-command flags");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_build(args: &[String], force_trace: bool) -> CliResult {
    let mut seed = 42u64;
    let mut tiny = false;
    let mut synth = true;
    let mut trace = force_trace;
    let mut out: Option<String> = None;
    let mut trace_out = "TRACE_build.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().ok_or("--seed needs a value")?.parse()?,
            "--tiny" => tiny = true,
            "--no-synth" => synth = false,
            "--trace" => trace = true,
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--trace-out" => {
                trace_out = it.next().ok_or("--trace-out needs a path")?.clone();
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    if trace {
        obs::set_enabled(true); // same effect as PATCHDB_TRACE=1
    }

    let mut options = if tiny {
        BuildOptions::tiny(seed)
    } else {
        BuildOptions::default_scale(seed)
    };
    options.synthesize = synth;

    eprintln!(
        "building PatchDB (seed {seed}, ~{} commits)...",
        options.corpus.expected_commits()
    );
    let report = PatchDb::build(&options);
    println!("{}", report.db.stats());
    println!("\nround  pool      range  candidates  verified  ratio");
    for r in &report.rounds {
        println!(
            "{:>5}  {:<8} {:>6}  {:>10}  {:>8}  {:>4.0}%",
            r.round, r.pool, r.search_range, r.candidates, r.verified_security,
            100.0 * r.ratio
        );
    }
    if let Some(path) = out {
        let json = report.db.to_json()?;
        std::fs::write(&path, &json)?;
        eprintln!("\nwrote {} bytes to {path}", json.len());
    }
    // `PATCHDB_TRACE=1 patchdb build` (no flags) also lands here: the
    // pipeline saw tracing enabled and attached telemetry.
    if let Some(telemetry) = &report.telemetry {
        let json = telemetry.to_json().to_pretty_string() + "\n";
        std::fs::write(&trace_out, &json)?;
        eprintln!("\nwrote trace ({} bytes) to {trace_out}", json.len());
        print_stage_summary(telemetry);
    }
    Ok(())
}

/// Prints the five top-level stage timings plus the NLS pruning
/// efficiency — the human-readable view of TRACE_build.json.
fn print_stage_summary(telemetry: &BuildTelemetry) {
    let trace = &telemetry.trace;
    if let Some(build) = trace.find_span("build") {
        println!("\nbuild stages ({:.2}s total):", build.ns as f64 / 1e9);
        for stage in &build.children {
            println!("  {:<14} {:>8.1} ms", stage.name, stage.ns as f64 / 1e6);
        }
    }
    let evaluated = trace.counter("nls.dist_evaluated").unwrap_or(0);
    let pruned = trace.counter("nls.pruned_norm").unwrap_or(0);
    if evaluated + pruned > 0 {
        println!(
            "nls: {evaluated} distances evaluated, {pruned} pruned by norm bound \
             ({:.1}% of comparisons avoided)",
            100.0 * pruned as f64 / (evaluated + pruned) as f64
        );
    }
}

fn with_db(args: &[String], f: fn(&PatchDb) -> CliResult) -> CliResult {
    let path = args.first().ok_or("expected a dataset JSON path")?;
    let text = std::fs::read_to_string(path)?;
    let db = PatchDb::from_json(&text)?;
    f(&db)
}

fn cmd_stats(db: &PatchDb) -> CliResult {
    println!("{}", db.stats());
    let dist = PatchDb::category_distribution(db.security_patches());
    println!("\nground-truth category distribution (security patches):");
    for c in ALL_CATEGORIES {
        if let Some(p) = dist.get(&c) {
            println!("  {:>2}  {:<40} {:>5.1}%", c.type_id(), c.label(), 100.0 * p);
        }
    }
    Ok(())
}

fn cmd_classify(db: &PatchDb) -> CliResult {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut counts = [0usize; 12];
    for r in db.security_patches() {
        let predicted = classify_patch(&r.patch);
        counts[predicted.type_id() - 1] += 1;
        if let Some(truth) = r.truth_category {
            total += 1;
            hits += usize::from(predicted == truth);
        }
    }
    println!("rule-based classification of {} security patches:", db.security_patches().count());
    for c in ALL_CATEGORIES {
        println!("  {:>2}  {:<40} {:>6}", c.type_id(), c.label(), counts[c.type_id() - 1]);
    }
    if total > 0 {
        println!(
            "\nagreement with ground truth: {hits}/{total} = {:.1}%",
            100.0 * hits as f64 / total as f64
        );
    }
    Ok(())
}

fn cmd_patterns(db: &PatchDb) -> CliResult {
    let freqs = pattern_frequencies(db.security_patches().map(|r| &r.patch));
    println!("fix patterns across {} security patches:", db.security_patches().count());
    for (p, n) in freqs {
        println!("  {:>6}×  {}", n, p.label());
    }
    let nonsec_hits = db
        .non_security
        .iter()
        .filter(|r| !mine_fix_patterns(&r.patch).is_empty())
        .count();
    println!(
        "(control: {nonsec_hits}/{} non-security patches match any pattern)",
        db.non_security.len()
    );
    Ok(())
}

fn cmd_analyze(db: &PatchDb) -> CliResult {
    use patchdb_features::{rank_discriminative, FeatureSummary};
    let sec: Vec<_> = db.security_patches().map(|r| r.features).collect();
    let nonsec: Vec<_> = db.non_security.iter().map(|r| r.features).collect();
    if sec.is_empty() || nonsec.is_empty() {
        return Err("dataset needs both classes for analysis".into());
    }
    let ranked = rank_discriminative(&FeatureSummary::of(&sec), &FeatureSummary::of(&nonsec));
    println!("top discriminative Table I features (security vs non-security):");
    println!("{:<40} {:>8} {:>10} {:>10}", "feature", "effect", "sec mean", "nonsec");
    for d in ranked.iter().take(15) {
        println!(
            "{:<40} {:>8.2} {:>10.2} {:>10.2}",
            d.name, d.effect_size, d.mean_a, d.mean_b
        );
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> CliResult {
    let db_path = args.first().ok_or("expected a dataset JSON path")?;
    let target_path = args.get(1).ok_or("expected a target .c file")?;
    let db = PatchDb::from_json(&std::fs::read_to_string(db_path)?)?;
    let target = std::fs::read_to_string(target_path)?;

    let mut vulnerable = 0usize;
    let mut patched = 0usize;
    for record in db.security_patches() {
        for sig in signatures_of(&record.patch) {
            match test_presence(&sig, &target) {
                PresenceVerdict::Vulnerable => {
                    vulnerable += 1;
                    println!(
                        "VULNERABLE clone of {} ({})",
                        record.commit.short(),
                        record.cve_id.as_deref().unwrap_or("silent fix")
                    );
                }
                PresenceVerdict::Patched => patched += 1,
                PresenceVerdict::NotApplicable => {}
            }
        }
    }
    println!("\n{target_path}: {vulnerable} vulnerable-signature hits, {patched} patched-signature hits");
    Ok(())
}
