//! # patchdb-repro
//!
//! Façade crate for the PatchDB (DSN 2021) reproduction. Re-exports the
//! public API of every workspace crate so that examples and downstream
//! users can depend on a single crate.
//!
//! See the [`patchdb`] crate for the top-level dataset construction API.

pub use clang_lite;
pub use patch_core;
pub use patchdb;
pub use patchdb_corpus;
pub use patchdb_features;
pub use patchdb_mine;
pub use patchdb_ml;
pub use patchdb_nls;
pub use patchdb_nn;
pub use patchdb_rt;
pub use patchdb_serve;
pub use patchdb_synth;
